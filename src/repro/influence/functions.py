"""Per-node influence scores on utility, bias and privacy risk.

``I_f(w_v) = −∇_θ f(θ*)ᵀ H⁻¹ ∇_θ L(v; θ*)`` is the first-order change of the
interested function ``f`` when node ``v`` is removed from training
(Eq. 10–12 of the paper with ``w_v = −1``).  The estimator computes, once per
interested function, the vector ``s_f = H⁻¹ ∇_θ f`` and then takes inner
products with the per-node loss gradients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.gnn.models import GNNModel
from repro.graphs.graph import Graph
from repro.influence.gradients import (
    bias_gradient,
    per_node_loss_gradients,
    risk_gradient,
    training_loss_gradient,
)
from repro.influence.hessian import (
    conjugate_gradient_solve,
    hessian_vector_product,
    make_loss_gradient_function,
)
from repro.nn.parameters import parameters_to_vector
from repro.utils.rng import RandomState


@dataclass
class InfluenceConfig:
    """Hyper-parameters of the influence estimation."""

    damping: float = 0.1
    cg_iterations: int = 30
    hvp_eps: float = 1e-4
    num_unconnected_pairs: Optional[int] = None
    risk_seed: RandomState = 0

    def __post_init__(self) -> None:
        if self.damping < 0:
            raise ValueError("damping must be non-negative")
        if self.cg_iterations <= 0:
            raise ValueError("cg_iterations must be positive")


@dataclass
class InfluenceScores:
    """Per-training-node influence values, aligned with ``train_indices``."""

    train_indices: np.ndarray
    utility: np.ndarray
    bias: np.ndarray
    risk: np.ndarray

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {"utility": self.utility, "bias": self.bias, "risk": self.risk}


class InfluenceEstimator:
    """Computes influence of training nodes on utility / bias / risk.

    Parameters
    ----------
    model:
        A *trained* victim model (the estimator evaluates everything at the
        current parameters θ*).
    graph:
        The training graph.
    config:
        Numerical settings (CG damping and iterations, HVP step size).
    adjacency:
        Optional structure override if the model was trained on a perturbed
        graph.
    """

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config: Optional[InfluenceConfig] = None,
        adjacency: Optional[np.ndarray] = None,
    ) -> None:
        if graph.labels is None or graph.train_mask is None:
            raise ValueError("influence estimation requires labels and a train mask")
        self.model = model
        self.graph = graph
        self.config = config or InfluenceConfig()
        self.adjacency = adjacency
        self._train_indices = graph.train_indices()
        self._node_gradients: Optional[List[np.ndarray]] = None
        self._gradient_function = make_loss_gradient_function(
            model, graph, adjacency=adjacency
        )
        self._theta = parameters_to_vector(model.parameters())

    # ------------------------------------------------------------------ #
    # Cached building blocks
    # ------------------------------------------------------------------ #
    @property
    def train_indices(self) -> np.ndarray:
        return self._train_indices

    def node_loss_gradients(self) -> List[np.ndarray]:
        """Per-node loss gradients ``∇_θ L(v; θ*)`` (cached)."""
        if self._node_gradients is None:
            self._node_gradients = per_node_loss_gradients(
                self.model, self.graph, indices=self._train_indices, adjacency=self.adjacency
            )
        return self._node_gradients

    def _inverse_hvp(self, vector: np.ndarray) -> np.ndarray:
        def hvp(v: np.ndarray) -> np.ndarray:
            return hessian_vector_product(
                self._gradient_function, self._theta, v, eps=self.config.hvp_eps
            )

        return conjugate_gradient_solve(
            hvp,
            vector,
            damping=self.config.damping,
            max_iterations=self.config.cg_iterations,
        )

    # ------------------------------------------------------------------ #
    # Influence computation
    # ------------------------------------------------------------------ #
    def influence_on_function(self, function_gradient: np.ndarray) -> np.ndarray:
        """``I_f(w_v)`` for every training node given ``∇_θ f(θ*)``."""
        stilde = self._inverse_hvp(np.asarray(function_gradient, dtype=np.float64))
        node_gradients = self.node_loss_gradients()
        return np.array([-float(stilde @ grad) for grad in node_gradients])

    def utility_influence(self) -> np.ndarray:
        """``I_futil(w_v)``: effect of removing each node on the training loss."""
        gradient = training_loss_gradient(
            self.model, self.graph, indices=self._train_indices, adjacency=self.adjacency
        )
        return self.influence_on_function(gradient)

    def bias_influence(self, similarity: Optional[np.ndarray] = None) -> np.ndarray:
        """``I_fbias(w_v)``: effect of removing each node on the InFoRM bias."""
        gradient = bias_gradient(
            self.model, self.graph, similarity=similarity, adjacency=self.adjacency
        )
        return self.influence_on_function(gradient)

    def risk_influence(self) -> np.ndarray:
        """``I_frisk(w_v)``: effect of removing each node on the edge privacy risk."""
        gradient = risk_gradient(
            self.model,
            self.graph,
            num_unconnected=self.config.num_unconnected_pairs,
            adjacency=self.adjacency,
            rng=self.config.risk_seed,
        )
        return self.influence_on_function(gradient)

    def compute_all(self, similarity: Optional[np.ndarray] = None) -> InfluenceScores:
        """Convenience wrapper returning utility, bias and risk influences."""
        return InfluenceScores(
            train_indices=self._train_indices.copy(),
            utility=self.utility_influence(),
            bias=self.bias_influence(similarity=similarity),
            risk=self.risk_influence(),
        )
