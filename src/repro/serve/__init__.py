"""Online inference serving: model registry, prediction engine, live graph.

The offline side of the library trains and evaluates; this package serves.
Its four pieces compose into a minimal but complete online system:

* :class:`~repro.serve.registry.ModelRegistry` — versioned on-disk store of
  trained models + architecture/graph/settings metadata;
* :class:`~repro.serve.session.GraphSession` — the mutable serving graph:
  incremental ``add_edges`` / ``remove_edges`` / ``add_node`` with
  revision bumps and change notification;
* :class:`~repro.serve.engine.InferenceEngine` — sampled k-hop (or
  exhaustive) per-node prediction with a revision-keyed logit cache and
  k-hop dirty-set invalidation;
* :class:`~repro.serve.batching.RequestBatcher` — micro-batch coalescing of
  queued requests, one shared block stack per batch.

``python -m repro.serve`` exposes the train/register/serve loop on the
command line.
"""

from repro.serve.batching import BatcherStats, RequestBatcher
from repro.serve.engine import (
    InferenceEngine,
    LogitCache,
    LogitCacheStats,
    ServeConfig,
)
from repro.serve.registry import ModelRegistry, graph_fingerprint, model_signature
from repro.serve.session import GraphSession, MutationEvent

__all__ = [
    "BatcherStats",
    "RequestBatcher",
    "InferenceEngine",
    "LogitCache",
    "LogitCacheStats",
    "ServeConfig",
    "ModelRegistry",
    "graph_fingerprint",
    "model_signature",
    "GraphSession",
    "MutationEvent",
]
