"""Online inference engine: sampled k-hop prediction with a logit cache.

The engine answers per-node prediction requests against a
:class:`~repro.serve.session.GraphSession`:

* misses are computed through the shared ego-block path
  (:mod:`repro.gnn.inference`): one block stack per miss batch, cost bounded
  by ``O(|batch| · Π fanouts)`` (or the exact receptive field when
  exhaustive) instead of Θ(N + m) per request;
* hits are served from a revision-keyed LRU **logit cache** — an entry is
  valid only for the structure revision it was computed under, so a stale
  prediction can never be returned;
* on a session mutation the engine computes the **k-hop dirty set** of the
  touched endpoints with the shared frontier kernels
  (:func:`repro.graphs.khop.khop_frontier`, over both the old and the new
  structure — edge removals invalidate through paths that no longer exist)
  and drops exactly those entries; every other entry is revalidated to the
  new revision, which is what keeps the warm hit-rate high under a stream of
  localised updates.

Sampled serving uses the keyed per-destination sampler with
``key = (seed, session.version)``: a node's sampled prediction is a pure
function of the node, the mutation history and the engine seed — identical
across request batchings, thread interleavings and processes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gnn.inference import resolve_fanouts
from repro.gnn.models import GNNModel
from repro.gnn.plan import (
    BufferPool,
    PlanCache,
    PlanUnsupported,
    pack_blocks,
    plan_params_hash,
    record_plan,
    shared_plan_cache,
)
from repro.gnn.sampling import NeighborSampler
from repro.graphs.khop import khop_frontier
from repro.obs.metrics import active_metrics, next_instance
from repro.obs.trace import span as obs_span
from repro.serve.session import GraphSession, MutationEvent
from repro.sparse.backend import get_backend_name
from repro.utils.cache import stable_hash

__all__ = [
    "ServeConfig",
    "LogitCacheStats",
    "LogitCache",
    "InferenceEngine",
    "softmax_rows",
]


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise shifted softmax — the one posterior kernel every serving
    front-end (engine, shard router) shares."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)

DEFAULT_FALLBACK_HOPS = 2
"""Dirty-set radius for models without a declared sampled depth (GAT)."""


@dataclass(frozen=True)
class ServeConfig:
    """Behaviour of one :class:`InferenceEngine`.

    ``fanouts=None`` (default) serves *exhaustively* — exact logits, equal to
    the offline full-graph forward to 1e-8.  Integer per-layer fanouts bound
    each request's receptive field for approximate low-latency serving.
    ``seed`` keys the deterministic sampler; ``cache_size`` bounds the logit
    LRU (``cache=False`` disables caching entirely).

    ``plan=True`` serves miss batches by replaying a recorded fused
    :class:`~repro.gnn.plan.InferencePlan` (falling back transparently for
    models without one); ``megabatch_segment`` bounds the node count of one
    ego-block sampling segment inside a megabatched miss flush — larger
    segments deduplicate more of the overlapping receptive fields before the
    block-diagonal pack, at the price of a bigger working buffer.
    """

    fanouts: Optional[Tuple[Optional[int], ...]] = None
    seed: int = 0
    cache: bool = True
    cache_size: int = 65536
    plan: bool = True
    megabatch_segment: int = 512

    def __post_init__(self) -> None:
        if self.cache_size <= 0:
            raise ValueError("cache_size must be positive")
        if self.megabatch_segment <= 0:
            raise ValueError("megabatch_segment must be positive")
        if self.fanouts is not None:
            object.__setattr__(self, "fanouts", tuple(self.fanouts))
            for fanout in self.fanouts:
                if fanout is not None and fanout <= 0:
                    raise ValueError("fanouts must be positive or None (exhaustive)")


@dataclass(frozen=True)
class LogitCacheStats:
    """Counters of a :class:`LogitCache`, plus the owning engine's
    fused-plan counters (zero when the engine serves unfused).

    ``plans_recorded`` counts fresh plan recordings (cache-key misses),
    ``plan_replays`` miss batches served by replaying an already-recorded
    plan, ``plan_fallbacks`` miss batches that fell back to the unfused
    module-tree forward, ``megabatches``/``megabatch_nodes`` the number of
    packed replays and the total nodes they covered.
    """

    hits: int
    misses: int
    invalidated: int
    size: int
    plans_recorded: int = 0
    plan_replays: int = 0
    plan_fallbacks: int = 0
    megabatches: int = 0
    megabatch_nodes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def mean_megabatch_size(self) -> float:
        return self.megabatch_nodes / self.megabatches if self.megabatches else 0.0


class LogitCache:
    """Thread-safe revision-keyed LRU of per-node logit rows.

    Entries are ``node → (revision, row)``; a lookup under a different
    revision is a miss (the row was computed over different structure).
    :meth:`invalidate` drops the dirty nodes and *revalidates* every
    surviving entry to the new revision — sound because the caller derived
    the dirty set as the complete set of nodes whose receptive field saw the
    mutation.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[int, Tuple[int, np.ndarray]]" = OrderedDict()
        self._lock = threading.Lock()
        # Counters live in the shared metrics registry (one label set per
        # cache); the LogitCacheStats dataclass is a thin view over them.
        metrics = active_metrics()
        labels = {"component": "logit_cache", "instance": next_instance()}
        self._hits = metrics.counter("serve.logit_cache.hits", **labels)
        self._misses = metrics.counter("serve.logit_cache.misses", **labels)
        self._invalidated = metrics.counter("serve.logit_cache.invalidated", **labels)

    def lookup(
        self, nodes: Iterable[int], revision: int
    ) -> Tuple[Dict[int, np.ndarray], List[int]]:
        """Split ``nodes`` into cached rows and misses, under ``revision``."""
        found: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        with self._lock:
            for node in nodes:
                entry = self._entries.get(node)
                if entry is not None and entry[0] == revision:
                    self._entries.move_to_end(node)
                    found[node] = entry[1]
                else:
                    missing.append(node)
        # One registry increment per batch, not per node: the warm path
        # stays O(1) lock acquisitions per lookup.
        if found:
            self._hits.inc(len(found))
        if missing:
            self._misses.inc(len(missing))
        return found, missing

    def store(self, nodes: Sequence[int], revision: int, rows: np.ndarray) -> None:
        with self._lock:
            for node, row in zip(nodes, rows):
                self._entries[int(node)] = (revision, row)
                self._entries.move_to_end(int(node))
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def invalidate(
        self,
        dirty_nodes: np.ndarray,
        new_revision: int,
        expected_revision: Optional[int] = None,
    ) -> int:
        """Drop dirty entries, revalidate the rest; returns the drop count.

        ``expected_revision`` is the pre-mutation revision: entries stored
        under any *other* revision are dropped instead of revalidated.  Such
        entries exist only through the store/mutate race (a miss computed
        over the old structure landing after the mutation's invalidation
        ran); revalidating them would resurrect a stale row one mutation
        later.
        """
        dirty = set(int(node) for node in np.asarray(dirty_nodes).reshape(-1))
        dropped = 0
        with self._lock:
            for node in list(self._entries):
                revision, row = self._entries[node]
                stale = (
                    expected_revision is not None and revision != expected_revision
                )
                if node in dirty or stale:
                    del self._entries[node]
                    dropped += 1
                else:
                    self._entries[node] = (new_revision, row)
        if dropped:
            self._invalidated.inc(dropped)
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> LogitCacheStats:
        with self._lock:
            return LogitCacheStats(
                hits=self._hits.value,
                misses=self._misses.value,
                invalidated=self._invalidated.value,
                size=len(self._entries),
            )


class InferenceEngine:
    """Serves single-node and batched predictions over a graph session."""

    def __init__(
        self,
        model: GNNModel,
        session: GraphSession,
        config: Optional[ServeConfig] = None,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.model = model
        self.session = session
        self.config = config or ServeConfig()
        self._layers = model.message_passing_layers
        if self._layers is not None:
            self._fanouts = resolve_fanouts(model, self.config.fanouts)
        else:
            # No sampled path (GAT): misses fall back to one full-graph
            # forward per miss batch; the cache still applies.
            if self.config.fanouts is not None:
                raise ValueError(
                    f"{type(model).__name__} has no sampled forward path; "
                    "fanouts are not supported"
                )
            self._fanouts = None
        self._cache = LogitCache(self.config.cache_size) if self.config.cache else None
        self._sampler = self._build_sampler()
        self._lock = threading.Lock()
        self._last_revision = session.revision
        # Fused-plan replay state.  The plan cache is shared across engines
        # (and shard replicas in one process) by default; the buffer pool is
        # per-engine and guarded, with the rest of the plan state, by its own
        # lock so replays never race on scratch memory.
        self._plan_cache = plan_cache if plan_cache is not None else shared_plan_cache()
        self._plan_lock = threading.Lock()
        self._buffers = BufferPool()
        self._plan_unsupported = False
        self._params_ids: Optional[Tuple[int, ...]] = None
        self._params_hash: Optional[str] = None
        self._sig_hash: Optional[str] = None
        metrics = active_metrics()
        labels = {"component": "engine", "instance": next_instance()}
        self._plans_recorded = metrics.counter("serve.plan.recorded", **labels)
        self._plan_replays = metrics.counter("serve.plan.replays", **labels)
        self._plan_fallbacks = metrics.counter("serve.plan.fallbacks", **labels)
        self._megabatches = metrics.counter("serve.plan.megabatches", **labels)
        self._megabatch_nodes = metrics.counter("serve.plan.megabatch_nodes", **labels)
        # Revision-keyed memo of the GAT full-graph fallback forward, so a
        # batcher flush split into several miss batches still pays exactly
        # one Θ(N²) forward per structure revision.
        self._full_memo: Optional[Tuple[int, np.ndarray]] = None
        session.add_listener(self._on_mutation)

    # ------------------------------------------------------------------ #
    # Prediction API
    # ------------------------------------------------------------------ #
    def predict_logits(self, nodes) -> np.ndarray:
        """Logit rows for ``nodes`` (scalar, sequence or array; order kept)."""
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        if nodes.ndim != 1:
            raise ValueError("nodes must be a scalar or a 1-D index array")
        if nodes.size == 0:
            raise ValueError("nodes must be non-empty")
        if nodes.min() < 0 or nodes.max() >= self.session.num_nodes:
            raise ValueError("node index out of bounds")
        unique = np.unique(nodes)
        revision = self.session.revision
        with obs_span("engine.predict") as engine_span:
            engine_span.set(nodes=int(nodes.size), unique=int(unique.size))
            with obs_span("engine.cache_lookup"):
                if self._cache is not None:
                    found, missing = self._cache.lookup(unique.tolist(), revision)
                else:
                    found, missing = {}, unique.tolist()
            if missing:
                with obs_span("engine.miss_coalesce") as miss_span:
                    miss_span.set(misses=len(missing))
                    miss_nodes = np.asarray(missing, dtype=np.int64)
                    if self._layers is None:
                        # Full-graph fallback (GAT): the forward produced
                        # every row anyway, so cache them all — one Θ(N²)
                        # forward amortises over the whole node set instead
                        # of one miss batch.
                        full = self._full_graph_logits(revision)
                        if self._cache is not None:
                            with obs_span("engine.cache_store"):
                                self._cache.store(
                                    range(full.shape[0]), revision, full
                                )
                        rows = full[miss_nodes]
                    else:
                        rows = self._compute(miss_nodes)
                        if self._cache is not None:
                            with obs_span("engine.cache_store"):
                                self._cache.store(missing, revision, rows)
                    for node, row in zip(missing, rows):
                        found[int(node)] = row
        return np.stack([found[int(node)] for node in nodes])

    def predict_proba(self, nodes) -> np.ndarray:
        """Softmax posteriors (the payload an online client receives)."""
        return softmax_rows(self.predict_logits(nodes))

    def predict_labels(self, nodes) -> np.ndarray:
        """Hard label predictions for ``nodes``."""
        return self.predict_logits(nodes).argmax(axis=1)

    @property
    def cache_stats(self) -> LogitCacheStats:
        """Logit-cache counters merged with the engine's plan counters.

        Always an object: with ``cache=False`` the cache fields are zero and
        only the plan counters are live.
        """
        base = (
            LogitCacheStats(hits=0, misses=0, invalidated=0, size=0)
            if self._cache is None
            else self._cache.stats
        )
        return replace(
            base,
            plans_recorded=self._plans_recorded.value,
            plan_replays=self._plan_replays.value,
            plan_fallbacks=self._plan_fallbacks.value,
            megabatches=self._megabatches.value,
            megabatch_nodes=self._megabatch_nodes.value,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_sampler(self) -> Optional[NeighborSampler]:
        if self._layers is None:
            return None
        return NeighborSampler(self.session.csr, seed=self.config.seed)

    def _sampling_key(self) -> int:
        # Deterministic across processes: the session version counts
        # mutations from zero, unlike process-global revision ids.
        return (self.config.seed << 20) ^ self.session.version

    def _full_graph_logits(self, revision: int) -> np.ndarray:
        """One full-graph fallback forward per structure revision, memoised
        so every miss batch of a flush (and every later cold call at the same
        revision) reuses it."""
        with self._plan_lock:
            memo = self._full_memo
            if memo is not None and memo[0] == revision:
                return memo[1]
        full = self.model.predict_logits(self.session.features, self.session.csr)
        with self._plan_lock:
            self._full_memo = (revision, full)
        return full

    def _plan_key(self) -> Tuple[str, str, str]:
        """``(architecture hash, parameter content hash, backend)`` — the
        shared plan-cache key for this engine's model right now.

        The parameter hash is recomputed only when a parameter array is
        rebound (``load_state_dict`` copies into fresh arrays), detected via
        an ``id()`` snapshot — O(#params) per miss batch, content hashing
        only on actual hot-swaps.  Caller holds ``_plan_lock``.
        """
        params = self.model.named_parameters()
        ids = tuple(id(param.data) for _, param in params)
        if ids != self._params_ids:
            self._params_ids = ids
            self._params_hash = plan_params_hash(self.model)
            self._plan_unsupported = False
        if self._sig_hash is None:
            from repro.serve.registry import model_signature

            try:
                self._sig_hash = stable_hash(model_signature(self.model))
            except TypeError:
                # Unregistered architecture: fall back to a structural key.
                self._sig_hash = stable_hash(
                    [type(self.model).__name__]
                    + [
                        [name, list(param.data.shape)]
                        for name, param in params
                    ]
                )
        backend = "dense" if get_backend_name() == "dense" else "sparse"
        return (self._sig_hash, self._params_hash, backend)

    def _compute(self, nodes: np.ndarray) -> np.ndarray:
        with self._lock:
            sampler = self._sampler
        key = self._sampling_key()
        if not self.config.plan:
            with obs_span("sample.ego_blocks"):
                blocks = sampler.ego_blocks(nodes, self._fanouts, key=key)
            with obs_span("engine.unfused_forward"):
                return self.model.predict_logits_blocks(
                    self.session.features, blocks
                )

        # Fused path: resolve (or record) the plan, sample the miss batch in
        # megabatch segments, pack them into one block-diagonal operator
        # stack and replay.  A fresh recording is validated against the
        # unfused forward over this very batch before it is trusted.
        with self._plan_lock:
            if self._plan_unsupported:
                plan = None
                fresh = False
            else:
                plan_key = self._plan_key()
                plan = self._plan_cache.get(plan_key)
                fresh = False
                if plan is None:
                    try:
                        with obs_span("plan.record"):
                            plan = record_plan(self.model)
                        fresh = True
                    except PlanUnsupported:
                        self._plan_unsupported = True
        if plan is None:
            self._plan_fallbacks.inc()
            with obs_span("sample.ego_blocks"):
                blocks = sampler.ego_blocks(nodes, self._fanouts, key=key)
            with obs_span("engine.unfused_forward"):
                return self.model.predict_logits_blocks(
                    self.session.features, blocks
                )

        segment = self.config.megabatch_segment
        with obs_span("sample.ego_blocks") as sample_span:
            sample_span.set(nodes=int(nodes.size), segment=segment)
            stacks = [
                sampler.ego_blocks(
                    nodes[start : start + segment], self._fanouts, key=key
                )
                for start in range(0, nodes.size, segment)
            ]
        dense = get_backend_name() == "dense"
        packed = pack_blocks(stacks, plan.kinds, dense=dense)
        with self._plan_lock:
            rows = plan.replay(self.session.features, packed, self._buffers)
            if not fresh:
                self._plan_replays.inc()
                self._megabatches.inc()
                self._megabatch_nodes.inc(int(nodes.size))
                return rows
        # First use of a fresh recording: check it against the unfused
        # forward on this batch before caching it for replay.
        reference = np.vstack(
            [
                self.model.predict_logits_blocks(self.session.features, stack)
                for stack in stacks
            ]
        )
        if np.allclose(rows, reference, rtol=0.0, atol=1e-8):
            self._plan_cache.put(plan_key, plan)
            self._plans_recorded.inc()
            self._megabatches.inc()
            self._megabatch_nodes.inc(int(nodes.size))
            return rows
        with self._plan_lock:  # pragma: no cover - defensive guard
            self._plan_unsupported = True
            self._plan_fallbacks.inc()
        return reference

    def _on_mutation(self, event: MutationEvent) -> None:
        hops = self._layers if self._layers is not None else DEFAULT_FALLBACK_HOPS
        with self._lock:
            if self._sampler is not None:
                # Incremental retarget: splice only the touched rows' degrees
                # instead of rebuilding the O(m) degree vector.  The copying
                # variant keeps snapshot semantics — an in-flight _compute
                # holds a consistent pre-mutation sampler.
                self._sampler = self._sampler.with_mutation(event)
            expected = self._last_revision
            self._last_revision = event.revision
        with self._plan_lock:
            # The memoised full-graph fallback was computed over the old
            # structure; the revision key already prevents reuse, dropping it
            # just releases the memory promptly.
            self._full_memo = None
        if self._cache is None:
            return
        if event.endpoints.size == 0:
            self._cache.invalidate(
                np.empty(0, dtype=np.int64),
                event.revision,
                expected_revision=expected,
            )
            return
        # Receptive fields are L-hop balls; an edge (i, j) participates in
        # every prediction within L hops of either endpoint.  Removals must
        # be expanded over the *old* structure too — the invalidation path
        # may no longer exist in the new one.
        old_endpoints = event.endpoints[event.endpoints < event.old_csr.shape[0]]
        dirty_old = khop_frontier(event.old_csr, old_endpoints, hops)
        dirty_new = khop_frontier(event.new_csr, event.endpoints, hops)
        self._cache.invalidate(
            np.union1d(dirty_old, dirty_new),
            event.revision,
            expected_revision=expected,
        )
