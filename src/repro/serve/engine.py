"""Online inference engine: sampled k-hop prediction with a logit cache.

The engine answers per-node prediction requests against a
:class:`~repro.serve.session.GraphSession`:

* misses are computed through the shared ego-block path
  (:mod:`repro.gnn.inference`): one block stack per miss batch, cost bounded
  by ``O(|batch| · Π fanouts)`` (or the exact receptive field when
  exhaustive) instead of Θ(N + m) per request;
* hits are served from a revision-keyed LRU **logit cache** — an entry is
  valid only for the structure revision it was computed under, so a stale
  prediction can never be returned;
* on a session mutation the engine computes the **k-hop dirty set** of the
  touched endpoints with the shared frontier kernels
  (:func:`repro.graphs.khop.khop_frontier`, over both the old and the new
  structure — edge removals invalidate through paths that no longer exist)
  and drops exactly those entries; every other entry is revalidated to the
  new revision, which is what keeps the warm hit-rate high under a stream of
  localised updates.

Sampled serving uses the keyed per-destination sampler with
``key = (seed, session.version)``: a node's sampled prediction is a pure
function of the node, the mutation history and the engine seed — identical
across request batchings, thread interleavings and processes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gnn.inference import resolve_fanouts
from repro.gnn.models import GNNModel
from repro.gnn.sampling import NeighborSampler
from repro.graphs.khop import khop_frontier
from repro.serve.session import GraphSession, MutationEvent

__all__ = [
    "ServeConfig",
    "LogitCacheStats",
    "LogitCache",
    "InferenceEngine",
    "softmax_rows",
]


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise shifted softmax — the one posterior kernel every serving
    front-end (engine, shard router) shares."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)

DEFAULT_FALLBACK_HOPS = 2
"""Dirty-set radius for models without a declared sampled depth (GAT)."""


@dataclass(frozen=True)
class ServeConfig:
    """Behaviour of one :class:`InferenceEngine`.

    ``fanouts=None`` (default) serves *exhaustively* — exact logits, equal to
    the offline full-graph forward to 1e-8.  Integer per-layer fanouts bound
    each request's receptive field for approximate low-latency serving.
    ``seed`` keys the deterministic sampler; ``cache_size`` bounds the logit
    LRU (``cache=False`` disables caching entirely).
    """

    fanouts: Optional[Tuple[Optional[int], ...]] = None
    seed: int = 0
    cache: bool = True
    cache_size: int = 65536

    def __post_init__(self) -> None:
        if self.cache_size <= 0:
            raise ValueError("cache_size must be positive")
        if self.fanouts is not None:
            object.__setattr__(self, "fanouts", tuple(self.fanouts))
            for fanout in self.fanouts:
                if fanout is not None and fanout <= 0:
                    raise ValueError("fanouts must be positive or None (exhaustive)")


@dataclass(frozen=True)
class LogitCacheStats:
    """Counters of a :class:`LogitCache`."""

    hits: int
    misses: int
    invalidated: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LogitCache:
    """Thread-safe revision-keyed LRU of per-node logit rows.

    Entries are ``node → (revision, row)``; a lookup under a different
    revision is a miss (the row was computed over different structure).
    :meth:`invalidate` drops the dirty nodes and *revalidates* every
    surviving entry to the new revision — sound because the caller derived
    the dirty set as the complete set of nodes whose receptive field saw the
    mutation.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[int, Tuple[int, np.ndarray]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._invalidated = 0

    def lookup(
        self, nodes: Iterable[int], revision: int
    ) -> Tuple[Dict[int, np.ndarray], List[int]]:
        """Split ``nodes`` into cached rows and misses, under ``revision``."""
        found: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        with self._lock:
            for node in nodes:
                entry = self._entries.get(node)
                if entry is not None and entry[0] == revision:
                    self._entries.move_to_end(node)
                    self._hits += 1
                    found[node] = entry[1]
                else:
                    self._misses += 1
                    missing.append(node)
        return found, missing

    def store(self, nodes: Sequence[int], revision: int, rows: np.ndarray) -> None:
        with self._lock:
            for node, row in zip(nodes, rows):
                self._entries[int(node)] = (revision, row)
                self._entries.move_to_end(int(node))
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def invalidate(
        self,
        dirty_nodes: np.ndarray,
        new_revision: int,
        expected_revision: Optional[int] = None,
    ) -> int:
        """Drop dirty entries, revalidate the rest; returns the drop count.

        ``expected_revision`` is the pre-mutation revision: entries stored
        under any *other* revision are dropped instead of revalidated.  Such
        entries exist only through the store/mutate race (a miss computed
        over the old structure landing after the mutation's invalidation
        ran); revalidating them would resurrect a stale row one mutation
        later.
        """
        dirty = set(int(node) for node in np.asarray(dirty_nodes).reshape(-1))
        dropped = 0
        with self._lock:
            for node in list(self._entries):
                revision, row = self._entries[node]
                stale = (
                    expected_revision is not None and revision != expected_revision
                )
                if node in dirty or stale:
                    del self._entries[node]
                    dropped += 1
                else:
                    self._entries[node] = (new_revision, row)
            self._invalidated += dropped
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> LogitCacheStats:
        with self._lock:
            return LogitCacheStats(
                hits=self._hits,
                misses=self._misses,
                invalidated=self._invalidated,
                size=len(self._entries),
            )


class InferenceEngine:
    """Serves single-node and batched predictions over a graph session."""

    def __init__(
        self,
        model: GNNModel,
        session: GraphSession,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.model = model
        self.session = session
        self.config = config or ServeConfig()
        self._layers = model.message_passing_layers
        if self._layers is not None:
            self._fanouts = resolve_fanouts(model, self.config.fanouts)
        else:
            # No sampled path (GAT): misses fall back to one full-graph
            # forward per miss batch; the cache still applies.
            if self.config.fanouts is not None:
                raise ValueError(
                    f"{type(model).__name__} has no sampled forward path; "
                    "fanouts are not supported"
                )
            self._fanouts = None
        self._cache = LogitCache(self.config.cache_size) if self.config.cache else None
        self._sampler = self._build_sampler()
        self._lock = threading.Lock()
        self._last_revision = session.revision
        session.add_listener(self._on_mutation)

    # ------------------------------------------------------------------ #
    # Prediction API
    # ------------------------------------------------------------------ #
    def predict_logits(self, nodes) -> np.ndarray:
        """Logit rows for ``nodes`` (scalar, sequence or array; order kept)."""
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        if nodes.ndim != 1:
            raise ValueError("nodes must be a scalar or a 1-D index array")
        if nodes.size == 0:
            raise ValueError("nodes must be non-empty")
        if nodes.min() < 0 or nodes.max() >= self.session.num_nodes:
            raise ValueError("node index out of bounds")
        unique = np.unique(nodes)
        revision = self.session.revision
        if self._cache is not None:
            found, missing = self._cache.lookup(unique.tolist(), revision)
        else:
            found, missing = {}, unique.tolist()
        if missing:
            miss_nodes = np.asarray(missing, dtype=np.int64)
            if self._layers is None:
                # Full-graph fallback (GAT): the forward produced every row
                # anyway, so cache them all — one Θ(N²) forward amortises
                # over the whole node set instead of one miss batch.
                full = self.model.predict_logits(
                    self.session.features, self.session.csr
                )
                if self._cache is not None:
                    self._cache.store(range(full.shape[0]), revision, full)
                rows = full[miss_nodes]
            else:
                rows = self._compute(miss_nodes)
                if self._cache is not None:
                    self._cache.store(missing, revision, rows)
            for node, row in zip(missing, rows):
                found[int(node)] = row
        return np.stack([found[int(node)] for node in nodes])

    def predict_proba(self, nodes) -> np.ndarray:
        """Softmax posteriors (the payload an online client receives)."""
        return softmax_rows(self.predict_logits(nodes))

    def predict_labels(self, nodes) -> np.ndarray:
        """Hard label predictions for ``nodes``."""
        return self.predict_logits(nodes).argmax(axis=1)

    @property
    def cache_stats(self) -> Optional[LogitCacheStats]:
        return None if self._cache is None else self._cache.stats

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_sampler(self) -> Optional[NeighborSampler]:
        if self._layers is None:
            return None
        return NeighborSampler(self.session.csr, seed=self.config.seed)

    def _sampling_key(self) -> int:
        # Deterministic across processes: the session version counts
        # mutations from zero, unlike process-global revision ids.
        return (self.config.seed << 20) ^ self.session.version

    def _compute(self, nodes: np.ndarray) -> np.ndarray:
        with self._lock:
            sampler = self._sampler
        blocks = sampler.ego_blocks(nodes, self._fanouts, key=self._sampling_key())
        return self.model.predict_logits_blocks(self.session.features, blocks)

    def _on_mutation(self, event: MutationEvent) -> None:
        hops = self._layers if self._layers is not None else DEFAULT_FALLBACK_HOPS
        with self._lock:
            if self._sampler is not None:
                # Incremental retarget: splice only the touched rows' degrees
                # instead of rebuilding the O(m) degree vector.  The copying
                # variant keeps snapshot semantics — an in-flight _compute
                # holds a consistent pre-mutation sampler.
                self._sampler = self._sampler.with_mutation(event)
            expected = self._last_revision
            self._last_revision = event.revision
        if self._cache is None:
            return
        if event.endpoints.size == 0:
            self._cache.invalidate(
                np.empty(0, dtype=np.int64),
                event.revision,
                expected_revision=expected,
            )
            return
        # Receptive fields are L-hop balls; an edge (i, j) participates in
        # every prediction within L hops of either endpoint.  Removals must
        # be expanded over the *old* structure too — the invalidation path
        # may no longer exist in the new one.
        old_endpoints = event.endpoints[event.endpoints < event.old_csr.shape[0]]
        dirty_old = khop_frontier(event.old_csr, old_endpoints, hops)
        dirty_new = khop_frontier(event.new_csr, event.endpoints, hops)
        self._cache.invalidate(
            np.union1d(dirty_old, dirty_new),
            event.revision,
            expected_revision=expected,
        )
