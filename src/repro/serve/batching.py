"""Request batching: coalesce queued predictions into shared block stacks.

A read-heavy serving workload arrives one node at a time, but the inference
engine's cost is dominated by per-call overhead (block extraction + one
forward): answering K queued requests as a single micro-batch shares one
sampled block stack across all of them.  :class:`RequestBatcher` provides
that coalescing:

* :meth:`submit` enqueues a request and returns a
  :class:`concurrent.futures.Future`;
* a drain loop (inline :meth:`flush`, or the background thread started by
  :meth:`start`) pops up to ``max_batch_size`` queued requests, answers them
  with **one** engine call, and resolves their futures;
* duplicate nodes inside a batch are computed once (the engine deduplicates
  and the cache serves repeats).

Because engine results are pure functions of ``(node, session version,
engine seed)`` — exhaustive *and* keyed-sampled modes alike — the responses
are independent of how requests happen to be coalesced: any number of
submitting threads, any drain interleaving, same answers.  The batcher
determinism test drives exactly that scenario.

Telemetry: every :meth:`submit` opens a root ``request`` trace whose
``batcher.queue`` child measures queue wait.  Coalesced batches run the
shared engine call under the *first* request's trace (the leader); the other
roots carry a ``coalesced_into`` attribute pointing at the leader's trace
id.  Queue-wait and end-to-end latency also feed registry histograms when
tracing is on.  All of this is inert when telemetry is disabled.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import active_metrics, next_instance
from repro.obs.trace import NULL_SPAN, get_tracer
from repro.obs.trace import span as obs_span
from repro.obs.trace import start_trace
from repro.serve.engine import InferenceEngine

__all__ = ["BatcherStats", "RequestBatcher"]


@dataclass(frozen=True)
class BatcherStats:
    """Throughput bookkeeping of a :class:`RequestBatcher`.

    A thin frozen view over the batcher's registry counters
    (:mod:`repro.obs.metrics`).  ``megabatches`` counts the pops that
    coalesced more than one ``max_batch_size`` micro-batch into a single
    engine call; ``largest_batch`` is the biggest single pop observed.
    """

    requests: int
    batches: int
    megabatches: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


# Queue entry: (node, future, submit perf-counter, root span, queue span).
_Entry = Tuple[int, Future, float, object, object]


class RequestBatcher:
    """Coalesces prediction requests into micro-batches over one engine.

    ``coalesce_batches`` lets a deep queue drain in megabatches of up to
    ``max_batch_size * coalesce_batches`` requests per engine call — the
    engine's fused plan replay then packs the whole megabatch into one
    block-diagonal operator per layer (one spmm per layer per flush instead
    of one per micro-batch).  ``coalesce_batches=1`` restores the strict
    per-micro-batch behaviour.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_size: int = 64,
        coalesce_batches: int = 8,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if coalesce_batches <= 0:
            raise ValueError("coalesce_batches must be positive")
        self.engine = engine
        self.max_batch_size = int(max_batch_size)
        self.coalesce_batches = int(coalesce_batches)
        self._queue: "Deque[_Entry]" = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        metrics = active_metrics()
        labels = {"component": "batcher", "instance": next_instance()}
        self._requests = metrics.counter("serve.batcher.requests", **labels)
        self._batches = metrics.counter("serve.batcher.batches", **labels)
        self._megabatches = metrics.counter("serve.batcher.megabatches", **labels)
        self._largest_batch = metrics.gauge("serve.batcher.largest_batch", **labels)
        # Latency distributions only fill while tracing is enabled — the
        # disabled serving leg stays within its ≤2% overhead budget.
        self._queue_wait = metrics.histogram("serve.batcher.queue_wait", **labels)
        self._latency = metrics.histogram("serve.request.latency", **labels)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, node: int) -> Future:
        """Enqueue a prediction request; resolves to the node's proba row.

        The node index is validated here so one bad request fails alone
        instead of poisoning every other request coalesced into its batch.
        """
        node = int(node)
        future: Future = Future()
        if not 0 <= node < self.engine.session.num_nodes:
            future.set_exception(
                ValueError(f"node index {node} out of bounds")
            )
            return future
        root = start_trace("request")
        queue_span = NULL_SPAN
        if root is not NULL_SPAN:
            root.set(node=node)
            queue_span = get_tracer().span("batcher.queue", parent=root)
        with self._lock:
            self._queue.append(
                (node, future, time.perf_counter(), root, queue_span)
            )
            self._requests.inc()
        self._wakeup.set()
        return future

    def predict(self, node: int, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`.

        Requires a running background drain loop (:meth:`start`) — calling it
        without one deadlocks by construction.
        """
        return self.submit(node).result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Drain the queue inline; returns the number of answered requests."""
        answered = 0
        while True:
            batch = self._pop_batch()
            if not batch:
                return answered
            self._answer(batch)
            answered += len(batch)

    def start(self) -> "RequestBatcher":
        """Run the drain loop on a daemon thread (idempotent)."""
        with self._lock:
            if self._worker is not None:
                return self
            self._stop.clear()
            self._worker = threading.Thread(target=self._drain_loop, daemon=True)
        self._worker.start()
        return self

    def stop(self) -> None:
        """Stop the background loop after draining outstanding requests."""
        with self._lock:
            worker = self._worker
            self._worker = None
        if worker is None:
            return
        self._stop.set()
        self._wakeup.set()
        worker.join()
        self.flush()

    @property
    def stats(self) -> BatcherStats:
        return BatcherStats(
            requests=self._requests.value,
            batches=self._batches.value,
            megabatches=self._megabatches.value,
            largest_batch=int(self._largest_batch.value),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _pop_batch(self) -> List[_Entry]:
        limit = self.max_batch_size * self.coalesce_batches
        with self._lock:
            if not self._queue:
                return []
            batch = [
                self._queue.popleft()
                for _ in range(min(limit, len(self._queue)))
            ]
            self._batches.inc()
            if len(batch) > self.max_batch_size:
                self._megabatches.inc()
            if len(batch) > self._largest_batch.value:
                self._largest_batch.set(len(batch))
        # Queue-wait spans close at pop: request left the queue here.  The
        # engine call that follows runs under the leader's trace.
        if batch[0][4] is not NULL_SPAN:
            now = time.perf_counter()
            for _, _, t_submit, _, queue_span in batch:
                queue_span.finish()
                self._queue_wait.observe(now - t_submit)
        return batch

    def _answer(self, batch: List[_Entry]) -> None:
        nodes = np.asarray([entry[0] for entry in batch], dtype=np.int64)
        leader = batch[0][3]
        try:
            if leader is not NULL_SPAN:
                for _, _, _, root, _ in batch[1:]:
                    root.set(coalesced_into=leader.trace_id)
                with leader.active():
                    with obs_span("batcher.engine_call") as call_span:
                        call_span.set(batch=len(batch))
                        rows = self.engine.predict_proba(nodes)
            else:
                rows = self.engine.predict_proba(nodes)
        except Exception as error:  # pragma: no cover - propagated to callers
            for _, future, _, root, _ in batch:
                future.set_exception(error)
                if root is not NULL_SPAN:
                    root.set(error=type(error).__name__)
                    root.finish()
            return
        for (_, future, _, _, _), row in zip(batch, rows):
            future.set_result(row)
        if leader is not NULL_SPAN:
            done = time.perf_counter()
            for _, _, t_submit, root, _ in batch:
                root.finish()
                self._latency.observe(done - t_submit)

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            self._wakeup.wait(timeout=0.05)
            self._wakeup.clear()
            self.flush()
        self.flush()
