"""Mutable graph session: incremental structure updates for online serving.

The library's :class:`~repro.graphs.graph.Graph` is immutable by convention
and dense by construction — the right shape for offline reproduction, the
wrong one for a server that must keep answering while edges arrive.  A
:class:`GraphSession` wraps the structure an inference engine serves from:

* the adjacency lives as a :class:`~repro.sparse.csr.CSRMatrix` that is
  edited *incrementally* (:func:`~repro.sparse.ops.apply_edge_updates_csr`
  splices only the touched rows; no dense round-trip, no O(N²) rebuild);
* every mutation bumps the structure revision (the same registry the
  operator caches key on) and increments a deterministic session ``version``
  counter (the sampling key of the serving engine — process-independent,
  unlike revision ids);
* listeners (inference engines) are notified with the old and new structure
  plus the touched endpoints, and compute their k-hop dirty sets with the
  shared frontier kernels — so only predictions whose receptive field saw
  the change are invalidated.

A session can optionally stay *attached* to a ``Graph``: mutations then also
edit the dense adjacency in place, bump the graph's revision and re-attach
the spliced CSR via :meth:`Graph.attach_csr`, keeping offline evaluation and
online serving views of the same structure coherent (the staleness tests
compare exactly these two paths).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.revision import next_revision, tag_adjacency
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import append_empty_node_csr, apply_edge_updates_csr

__all__ = ["MutationEvent", "GraphSession"]


class MutationEvent:
    """One structure mutation, as broadcast to session listeners.

    ``endpoints`` are the *semantic* touched nodes (the edge endpoints of the
    mutation) — what dirty-set invalidation expands from.  ``touched_rows``
    are the CSR rows whose stored content actually changed; for plain
    edge mutations the two coincide, but a cluster shard's halo sync also
    refreshes entering/leaving ghost rows whose global structure did *not*
    change — those belong in ``touched_rows`` (degree splices) but not in
    ``endpoints`` (no invalidation needed).
    """

    __slots__ = (
        "old_csr",
        "new_csr",
        "endpoints",
        "revision",
        "version",
        "touched_rows",
    )

    def __init__(
        self,
        old_csr: CSRMatrix,
        new_csr: CSRMatrix,
        endpoints: np.ndarray,
        revision: int,
        version: int,
        touched_rows: Optional[np.ndarray] = None,
    ) -> None:
        self.old_csr = old_csr
        self.new_csr = new_csr
        self.endpoints = endpoints
        self.revision = revision
        self.version = version
        self.touched_rows = endpoints if touched_rows is None else touched_rows


MutationListener = Callable[[MutationEvent], None]


class GraphSession:
    """A mutable adjacency + features pair with change notification.

    Parameters
    ----------
    adjacency:
        Initial structure as a :class:`CSRMatrix` (benchmark scale) or a
        dense symmetric array.
    features:
        ``(N, F)`` node-feature matrix; grown by :meth:`add_node`.
    graph:
        Optional attached :class:`Graph` kept coherent with the session (its
        dense adjacency is edited in place and its revision bumped on every
        mutation).  Use :meth:`from_graph` to build both from one object.
    initial_version:
        Starting value of the deterministic mutation counter.  Replica
        sessions (cluster shard workers) start from the primary session's
        current counter so their sampling keys stay aligned with it.
    """

    def __init__(
        self,
        adjacency,
        features: np.ndarray,
        graph: Optional[Graph] = None,
        initial_version: int = 0,
    ) -> None:
        if isinstance(adjacency, CSRMatrix):
            self._csr = adjacency
        else:
            self._csr = CSRMatrix.from_dense(np.asarray(adjacency, dtype=np.float64))
        if self._csr.shape[0] != self._csr.shape[1]:
            raise ValueError("adjacency must be square")
        self.features = np.asarray(features, dtype=np.float64)
        if self.features.ndim != 2 or self.features.shape[0] != self._csr.shape[0]:
            raise ValueError(
                "features must be (N, F) with one row per adjacency node"
            )
        self._graph = graph
        if graph is not None:
            if graph.adjacency.shape != self._csr.shape:
                raise ValueError("attached graph does not match the adjacency")
            graph.attach_csr(self._csr)
            self._revision = graph.revision
        else:
            self._revision = tag_adjacency(self._csr, owned=True)
        if initial_version < 0:
            raise ValueError("initial_version must be non-negative")
        self._version = int(initial_version)
        self._listeners: List[MutationListener] = []

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphSession":
        """A session over ``graph``'s structure, kept coherent with it."""
        return cls(graph.csr(), graph.features, graph=graph)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def csr(self) -> CSRMatrix:
        """The current CSR adjacency (immutable snapshot; replaced on edit)."""
        return self._csr

    @property
    def graph(self) -> Optional[Graph]:
        return self._graph

    @property
    def num_nodes(self) -> int:
        return self._csr.shape[0]

    @property
    def revision(self) -> int:
        """Process-unique structure revision (cache key of derived operators)."""
        return self._revision

    @property
    def version(self) -> int:
        """Deterministic mutation counter (sampling key of serving engines).

        Starts at 0 and increments by one per mutation — unlike
        :attr:`revision` it is reproducible across processes, so keyed
        sampled serving draws identical neighbourhoods in every run with the
        same mutation history.
        """
        return self._version

    def add_listener(self, listener: MutationListener) -> None:
        """Register a callback invoked after every structure mutation."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def add_edges(self, pairs: np.ndarray) -> int:
        """Insert undirected edges; returns the new revision.

        Existing edges are left untouched (idempotent).  Only the incident
        rows of the CSR are re-assembled.
        """
        pairs = self._check_pairs(pairs)
        new_csr = apply_edge_updates_csr(self._csr, add_pairs=pairs)
        return self._commit(new_csr, pairs, dense_value=1.0)

    def remove_edges(self, pairs: np.ndarray) -> int:
        """Delete undirected edges (absent edges are a no-op); returns the new revision."""
        pairs = self._check_pairs(pairs)
        new_csr = apply_edge_updates_csr(self._csr, remove_pairs=pairs)
        return self._commit(new_csr, pairs, dense_value=0.0)

    def add_node(
        self,
        features_row: np.ndarray,
        neighbors: Optional[np.ndarray] = None,
        label: int = 0,
    ) -> int:
        """Append one node (index ``N``) with optional initial edges.

        Returns the new node's index.  When a ``Graph`` is attached, its
        dense arrays are grown as well; the new node receives ``label`` and
        stays outside every split mask (serving-only nodes are never
        training data).
        """
        features_row = np.asarray(features_row, dtype=np.float64).reshape(-1)
        if features_row.size != self.features.shape[1]:
            raise ValueError(
                f"features_row must have {self.features.shape[1]} entries"
            )
        node = self.num_nodes
        # Validate the neighbour list before growing any state: a failed add
        # must leave the session (and any attached Graph) untouched.
        if neighbors is not None:
            neighbors = np.asarray(neighbors, dtype=np.int64).reshape(-1)
            if neighbors.size and (neighbors.min() < 0 or neighbors.max() >= node):
                raise ValueError(
                    "neighbors must be existing node indices "
                    f"(0..{node - 1})"
                )
        old_csr = self._csr
        grown = append_empty_node_csr(old_csr)
        self.features = np.vstack([self.features, features_row[None, :]])

        graph = self._graph
        if graph is not None:
            n = graph.num_nodes
            adjacency = np.zeros((n + 1, n + 1), dtype=np.float64)
            adjacency[:n, :n] = graph.adjacency
            graph.adjacency = adjacency
            graph.features = self.features
            if graph.labels is not None:
                graph.labels = np.concatenate(
                    [graph.labels, np.asarray([label], dtype=graph.labels.dtype)]
                )
            for mask_name in ("train_mask", "val_mask", "test_mask"):
                mask = getattr(graph, mask_name)
                if mask is not None:
                    setattr(graph, mask_name, np.concatenate([mask, [False]]))

        pairs = np.empty((0, 2), dtype=np.int64)
        if neighbors is not None and neighbors.size:
            pairs = np.stack(
                [np.full(neighbors.size, node, dtype=np.int64), neighbors], axis=1
            )
        new_csr = apply_edge_updates_csr(grown, add_pairs=pairs) if pairs.size else grown
        self._commit(new_csr, pairs, dense_value=1.0, old_csr=old_csr)
        return node

    def replace_structure(
        self,
        new_csr: CSRMatrix,
        endpoints: np.ndarray,
        touched_rows: Optional[np.ndarray] = None,
        features: Optional[np.ndarray] = None,
    ) -> int:
        """Commit an externally assembled structure; returns the new revision.

        The cluster shard worker's commit path: the router ships freshly
        spliced rows (changed endpoints, entering/leaving halo nodes) and the
        worker installs the resulting CSR here — one revision + version bump
        and one listener broadcast, exactly like a local mutation.
        ``endpoints`` are the semantic mutation endpoints (dirty-set seeds);
        ``touched_rows`` the rows whose stored content changed (defaults to
        ``endpoints``); ``features`` optionally replaces the feature matrix
        (grown node set, freshly filled ghost rows).  Not available on
        sessions attached to a dense :class:`Graph` — the external structure
        has no dense counterpart to keep coherent.
        """
        if self._graph is not None:
            raise ValueError(
                "replace_structure is not supported on graph-attached sessions"
            )
        if new_csr.shape[0] != new_csr.shape[1]:
            raise ValueError("new_csr must be square")
        if new_csr.shape[0] < self._csr.shape[0]:
            raise ValueError("structure can only grow or stay the same size")
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.ndim != 2 or features.shape[0] != new_csr.shape[0]:
                raise ValueError(
                    "features must be (N, F) with one row per adjacency node"
                )
            self.features = features
        elif new_csr.shape[0] != self.features.shape[0]:
            raise ValueError("grown structure needs a grown feature matrix")
        old_csr = self._csr
        self._csr = new_csr
        self._revision = next_revision()
        tag_adjacency(new_csr, revision=self._revision, owned=True)
        self._version += 1
        endpoints = np.asarray(endpoints, dtype=np.int64).reshape(-1)
        touched = (
            endpoints
            if touched_rows is None
            else np.asarray(touched_rows, dtype=np.int64).reshape(-1)
        )
        event = MutationEvent(
            old_csr=old_csr,
            new_csr=new_csr,
            endpoints=endpoints,
            revision=self._revision,
            version=self._version,
            touched_rows=touched,
        )
        for listener in self._listeners:
            listener(event)
        return self._revision

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return pairs.reshape(0, 2)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (M, 2)")
        if pairs.min() < 0 or pairs.max() >= self.num_nodes:
            raise ValueError("pair indices out of range")
        if np.any(pairs[:, 0] == pairs[:, 1]):
            raise ValueError("self-loops are not allowed")
        return pairs

    def _commit(
        self,
        new_csr: CSRMatrix,
        pairs: np.ndarray,
        dense_value: float,
        old_csr: Optional[CSRMatrix] = None,
    ) -> int:
        old = old_csr if old_csr is not None else self._csr
        self._csr = new_csr
        graph = self._graph
        if graph is not None:
            for i, j in pairs:
                # Mirror the CSR kernel's semantics exactly: adding an edge
                # that already exists keeps its stored weight (only absent
                # entries become 1.0); removals always zero.
                if dense_value == 0.0 or graph.adjacency[i, j] == 0.0:
                    graph.adjacency[i, j] = dense_value
                    graph.adjacency[j, i] = dense_value
            self._revision = graph.bump_revision()
            graph.attach_csr(new_csr)
        else:
            self._revision = next_revision()
            tag_adjacency(new_csr, revision=self._revision, owned=True)
        self._version += 1
        endpoints = np.unique(pairs.reshape(-1)) if pairs.size else np.empty(
            0, dtype=np.int64
        )
        event = MutationEvent(
            old_csr=old,
            new_csr=new_csr,
            endpoints=endpoints,
            revision=self._revision,
            version=self._version,
        )
        for listener in self._listeners:
            listener(event)
        return self._revision
