"""Command-line entry point: ``python -m repro.serve <command>``.

Examples
--------
Train a GCN on the Cora surrogate and register it::

    python -m repro.serve train --dataset cora --model gcn --epochs 40

Serve 200 requests from the registered model, mutating the graph halfway::

    python -m repro.serve serve --name cora-gcn --requests 200 --mutate 16

List registry contents::

    python -m repro.serve list
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.datasets import load_dataset
from repro.gnn.models import MODEL_REGISTRY, build_model
from repro.obs.metrics import active_metrics, next_instance
from repro.obs.profile import format_top, global_profiler, set_profiling
from repro.obs.slo import check_slo, format_slo, parse_slo, resolve_slo_histograms
from repro.obs.snapshot import DEFAULT_SNAPSHOT_PATH, SnapshotEmitter
from repro.obs.trace import set_tracing
from repro.gnn.trainer import TrainConfig, Trainer
from repro.serve.batching import RequestBatcher
from repro.serve.engine import InferenceEngine, ServeConfig
from repro.serve.registry import DEFAULT_REGISTRY_ROOT, ModelRegistry
from repro.serve.session import GraphSession


def _parse_fanouts(text: str):
    from repro.experiments.__main__ import parse_fanouts

    return parse_fanouts(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online inference serving over trained reproduction models.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--registry",
        default=DEFAULT_REGISTRY_ROOT,
        help=f"model registry root directory (default: {DEFAULT_REGISTRY_ROOT})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser(
        "train",
        parents=[common],
        help="train a model on a dataset surrogate and register it",
    )
    train.add_argument("--dataset", default="cora")
    train.add_argument("--model", default="gcn", choices=sorted(MODEL_REGISTRY))
    train.add_argument("--name", default=None, help="registry name (default: <dataset>-<model>)")
    train.add_argument("--epochs", type=int, default=40)
    train.add_argument("--hidden", type=int, default=16)
    train.add_argument("--scale", type=float, default=0.45, help="dataset scale factor")
    train.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve",
        parents=[common],
        help="load a registered model and answer prediction requests",
    )
    serve.add_argument("--name", required=True)
    serve.add_argument("--version", type=int, default=None)
    serve.add_argument("--requests", type=int, default=100)
    serve.add_argument(
        "--fanouts",
        type=_parse_fanouts,
        default=None,
        help="per-layer sampling budgets, e.g. '10,10' (default: exhaustive/exact)",
    )
    serve.add_argument(
        "--mutate",
        type=int,
        default=0,
        help="inject this many random edges halfway through the request stream",
    )
    serve.add_argument("--batch-size", type=int, default=32, help="micro-batch size")
    serve.add_argument("--seed", type=int, default=0, help="request-stream seed")
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through a sharded worker cluster instead of one engine "
        "(delegates to python -m repro.cluster serve)",
    )
    add_telemetry_arguments(serve)

    commands.add_parser(
        "list", parents=[common], help="list registered models and versions"
    )

    gc = commands.add_parser(
        "gc",
        parents=[common],
        help="prune old registry versions (pinned versions survive)",
    )
    gc.add_argument("--name", default=None, help="one model name (default: all)")
    gc.add_argument(
        "--keep-last",
        type=int,
        default=3,
        help="committed versions to retain per name (default: 3)",
    )

    pin = commands.add_parser(
        "pin", parents=[common], help="protect one version from gc"
    )
    pin.add_argument("--name", required=True)
    pin.add_argument("--version", type=int, required=True)

    unpin = commands.add_parser(
        "unpin", parents=[common], help="remove a gc protection pin"
    )
    unpin.add_argument("--name", required=True)
    unpin.add_argument("--version", type=int, required=True)
    return parser


def add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The telemetry flag group shared by the serve and cluster CLIs."""
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable request tracing and telemetry snapshot emission",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable the kernel-level profiler (per-op times, flops, memory "
        "high-water marks; with --telemetry, kernel events join the "
        "request timelines)",
    )
    parser.add_argument(
        "--obs-path",
        default=DEFAULT_SNAPSHOT_PATH,
        help=f"telemetry snapshot JSONL path (default: {DEFAULT_SNAPSHOT_PATH})",
    )
    parser.add_argument(
        "--obs-interval",
        type=float,
        default=0.0,
        help="emit a snapshot every N seconds while serving "
        "(default: one final snapshot)",
    )
    parser.add_argument(
        "--slo",
        type=parse_slo,
        default=None,
        metavar="SPEC",
        help="latency objectives in ms, e.g. 'p99=50' or 'p50=10,p99=50'; "
        "'p99:worker.compute=20' targets a named histogram; violations "
        "exit 1",
    )


def _rebuild_graph(meta: dict):
    info = meta.get("metadata", {})
    dataset = info.get("dataset")
    if dataset is None:
        raise SystemExit(
            "registry entry carries no dataset metadata; this CLI can only "
            "serve models registered by 'python -m repro.serve train'"
        )
    return load_dataset(
        dataset, seed=int(info.get("seed", 0)), scale=float(info.get("scale", 1.0))
    )


def cmd_train(args) -> int:
    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    model = build_model(
        args.model,
        in_features=graph.num_features,
        num_classes=graph.num_classes,
        hidden_features=args.hidden,
        rng=args.seed,
    )
    config = TrainConfig(epochs=args.epochs, patience=None)
    result = Trainer(model, config).fit(graph)
    registry = ModelRegistry(args.registry)
    name = args.name or f"{args.dataset}-{args.model}"
    version = registry.save(
        name,
        model,
        graph=graph,
        metadata={
            "dataset": args.dataset,
            "seed": args.seed,
            "scale": args.scale,
            "epochs": args.epochs,
            "final_val_accuracy": result.final_val_accuracy,
        },
    )
    print(
        f"registered {name} v{version} under {args.registry} "
        f"(val accuracy {result.final_val_accuracy:.3f})"
    )
    return 0


def cmd_serve(args) -> int:
    if args.shards is not None:
        from repro.cluster.__main__ import main as cluster_main

        argv = [
            "serve",
            "--registry", args.registry,
            "--name", args.name,
            "--shards", str(args.shards),
            "--requests", str(args.requests),
            "--mutate", str(args.mutate),
            "--seed", str(args.seed),
            "--batch-size", str(args.batch_size),
            "--obs-path", args.obs_path,
            "--obs-interval", str(args.obs_interval),
        ]
        if args.telemetry:
            argv.append("--telemetry")
        if args.profile:
            argv.append("--profile")
        if args.slo is not None:
            argv += [
                "--slo",
                ",".join(f"{k}={v * 1e3:g}" for k, v in args.slo.items()),
            ]
        if args.version is not None:
            argv += ["--version", str(args.version)]
        if args.fanouts is not None:
            argv += [
                "--fanouts",
                ",".join("all" if f is None else str(f) for f in args.fanouts),
            ]
        return cluster_main(argv)
    registry = ModelRegistry(args.registry)
    meta = registry.read_meta(args.name, version=args.version)
    graph = _rebuild_graph(meta)
    # expect_graph verifies the rebuilt surrogate fingerprints identically to
    # the structure the model was trained on.
    model, meta = registry.load(args.name, version=args.version, expect_graph=graph)
    session = GraphSession.from_graph(graph)
    engine = InferenceEngine(model, session, ServeConfig(fanouts=args.fanouts))
    batcher = RequestBatcher(engine, max_batch_size=args.batch_size).start()
    if args.telemetry:
        set_tracing(True)
    if args.profile:
        set_profiling(True)
    emitter = (
        SnapshotEmitter(args.obs_path, interval=args.obs_interval)
        if args.telemetry or args.profile
        else None
    )
    if emitter is not None:
        # start() registers the atexit flush; the thread only spins with
        # a positive interval.
        emitter.start()

    rng = np.random.default_rng(args.seed)
    nodes = rng.integers(0, session.num_nodes, size=args.requests)
    half = args.requests // 2
    # The bench loop's own latency record is a registry histogram (streaming
    # p50/p99 over log-spaced buckets) instead of the old perf_counter list.
    latency = active_metrics().histogram(
        "serve.cli.latency",
        component="serve_cli",
        instance=next_instance(),
    )

    def fire(batch_nodes) -> None:
        pending = [
            (time.perf_counter(), batcher.submit(int(node))) for node in batch_nodes
        ]
        for submitted, future in pending:
            future.result()
            latency.observe(time.perf_counter() - submitted)

    started = time.perf_counter()
    fire(nodes[:half])
    if args.mutate > 0:
        pairs = np.stack(
            [
                rng.integers(0, session.num_nodes, size=args.mutate),
                rng.integers(0, session.num_nodes, size=args.mutate),
            ],
            axis=1,
        )
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        session.add_edges(pairs)
        print(f"mutated: +{pairs.shape[0]} random edges (revision {session.revision})")
    fire(nodes[half:])
    elapsed = time.perf_counter() - started
    batcher.stop()
    if emitter is not None:
        emitter.stop()
        print(f"telemetry: snapshots at {args.obs_path}")

    stats = engine.cache_stats
    print(
        f"served {args.requests} requests in {elapsed:.3f}s "
        f"({args.requests / elapsed:.0f} req/s)"
    )
    if latency.count:
        print(
            f"latency p50 {latency.quantile(0.50) * 1e3:.2f}ms  "
            f"p99 {latency.quantile(0.99) * 1e3:.2f}ms"
        )
    if stats is not None:
        print(
            f"logit cache: {stats.hits} hits / {stats.misses} misses "
            f"({stats.invalidated} invalidated, {stats.size} resident)"
        )
    print(
        f"batches: {batcher.stats.batches} "
        f"(mean size {batcher.stats.mean_batch_size:.1f})"
    )
    if args.profile:
        profiler = global_profiler()
        print("profile (hottest kernels):")
        print(format_top(profiler.table(), profiler.memory_marks(), limit=10))
    if args.slo is not None:
        violations = check_slo(
            latency, args.slo, histograms=resolve_slo_histograms(args.slo)
        )
        if violations:
            for violation in violations:
                print(f"SLO FAIL: {violation}")
            return 1
        print(f"SLO OK: {format_slo(args.slo)}")
    return 0


def cmd_list(args) -> int:
    registry = ModelRegistry(args.registry)
    names = registry.list_models()
    if not names:
        print(f"(no models registered under {args.registry})")
        return 0
    for name in names:
        for version in registry.versions(name):
            meta = registry.read_meta(name, version)
            info = meta.get("metadata", {})
            print(
                f"{name} v{version}: {meta['model_type']} "
                f"dataset={info.get('dataset', '?')} "
                f"val_acc={info.get('final_val_accuracy', float('nan')):.3f}"
            )
    return 0


def cmd_gc(args) -> int:
    registry = ModelRegistry(args.registry)
    names = [args.name] if args.name else registry.list_models()
    total = 0
    for name in names:
        removed = registry.prune(name, keep_last=args.keep_last)
        pinned = registry.pinned_versions(name)
        total += len(removed)
        print(
            f"{name}: removed {removed or 'nothing'}, "
            f"kept {registry.versions(name)}"
            + (f" (pinned {pinned})" if pinned else "")
        )
    print(f"gc: {total} version(s) removed")
    return 0


def cmd_pin(args) -> int:
    registry = ModelRegistry(args.registry)
    if args.command == "pin":
        registry.pin(args.name, args.version)
    else:
        registry.unpin(args.name, args.version)
    print(
        f"{args.command}ned {args.name} v{args.version} "
        f"(pinned: {registry.pinned_versions(args.name)})"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return cmd_train(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "gc":
        return cmd_gc(args)
    if args.command in ("pin", "unpin"):
        return cmd_pin(args)
    return cmd_list(args)


if __name__ == "__main__":
    sys.exit(main())
