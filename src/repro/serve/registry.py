"""Versioned on-disk model registry for the serving subsystem.

Offline training produces a model object in memory; serving needs the same
model back in a *different* process, possibly much later, together with
enough metadata to reconstruct the architecture and to check that it is
being served against the structure it was trained on.  The registry stores,
per ``(name, version)``:

* ``params.npz``  — the state dict, written by :mod:`repro.nn.serialization`;
* ``meta.json``   — the architecture signature (model type + constructor
  arguments inferred from the instance), the graph fingerprint of the
  training structure, a canonical rendering of the
  :class:`~repro.core.config.MethodSettings` used (when given), and free-form
  caller metadata (dataset name / seed / scale for the CLI round trip).

Versions are integers assigned monotonically per name; ``load`` resolves the
latest version by default.  Loading rebuilds the model through
:func:`repro.gnn.models.build_model` and restores the parameters — the
round-trip is exact (bit-for-bit ``state_dict`` equality is asserted by the
registry tests for GCN, GraphSAGE and GAT).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gnn.models import GAT, GCN, GNNModel, GraphSAGE, build_model
from repro.graphs.graph import Graph
from repro.nn.serialization import load_into, save_state_dict
from repro.sparse.csr import CSRMatrix
from repro.utils.cache import stable_hash

__all__ = ["graph_fingerprint", "ModelRegistry", "model_signature"]

DEFAULT_REGISTRY_ROOT = os.path.join("results", "registry")

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def graph_fingerprint(structure) -> str:
    """Content hash of a graph structure (dense array, CSR or ``Graph``).

    Two structures fingerprint equally iff their adjacency entries are
    identical, regardless of representation — the registry stores this so a
    serving process can verify it is answering over the structure (revision)
    the model was trained on.
    """
    if isinstance(structure, Graph):
        structure = structure.csr()
    if not isinstance(structure, CSRMatrix):
        structure = CSRMatrix.from_dense(np.asarray(structure, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(np.asarray(structure.shape, dtype=np.int64).tobytes())
    digest.update(structure.indptr.tobytes())
    digest.update(structure.indices.tobytes())
    digest.update(structure.data.tobytes())
    return digest.hexdigest()[:24]


def model_signature(model: GNNModel) -> Tuple[str, Dict]:
    """Infer ``(model type, build_model kwargs)`` from a model instance."""
    if isinstance(model, GCN):
        first: object = model.conv0
        last = getattr(model, f"conv{model.num_layers - 1}")
        return "gcn", {
            "in_features": first.in_features,
            "hidden_features": (
                first.out_features if model.num_layers > 1 else 16
            ),
            "num_classes": last.out_features,
            "num_layers": model.num_layers,
            "dropout": model.dropout.p,
        }
    if isinstance(model, GraphSAGE):
        return "graphsage", {
            "in_features": model.conv0.in_features,
            "hidden_features": model.conv0.out_features,
            "num_classes": model.conv1.out_features,
            "dropout": model.dropout.p,
            "num_samples": model.num_samples,
        }
    if isinstance(model, GAT):
        return "gat", {
            "in_features": model.conv0.in_features,
            "hidden_features": model.conv0.out_features * model.conv0.heads,
            "num_classes": model.conv1.out_features,
            "heads": model.conv0.heads,
            "dropout": model.dropout.p,
        }
    raise TypeError(f"cannot infer a registry signature for {type(model).__name__}")


class ModelRegistry:
    """Filesystem-backed store of trained models, addressed by name/version."""

    def __init__(self, root: str = DEFAULT_REGISTRY_ROOT) -> None:
        self.root = root

    @staticmethod
    def plan_cache():
        """The process-wide fused inference-plan cache.

        Plans are keyed by ``(architecture signature hash, parameter content
        hash, backend)`` — the same :func:`model_signature` that names a
        registry entry — so every engine replica serving one registry version
        records the plan once and replays it thereafter, and loading a new
        version (new parameter hash) records a fresh plan instead of
        replaying stale weights.
        """
        from repro.gnn.plan import shared_plan_cache

        return shared_plan_cache()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save(
        self,
        name: str,
        model: GNNModel,
        graph=None,
        settings=None,
        metadata: Optional[Dict] = None,
    ) -> int:
        """Persist ``model`` under ``name``; returns the assigned version.

        ``graph`` (a ``Graph``, dense array or CSR) records the training
        structure's fingerprint; ``settings`` (typically a
        :class:`~repro.core.config.MethodSettings`) is content-hashed and
        canonically rendered so a later process can tell two configurations
        apart; ``metadata`` is stored verbatim (must be JSON-serialisable).
        """
        self._check_name(name)
        os.makedirs(os.path.join(self.root, name), exist_ok=True)
        # Claim the version directory atomically (mkdir is O_EXCL): two
        # processes registering concurrently get distinct versions instead of
        # interleaving their files inside one entry.
        version = self.latest_version(name) + 1
        while True:
            directory = self._entry_dir(name, version)
            try:
                os.mkdir(directory)
                break
            except FileExistsError:
                version += 1
        model_type, kwargs = model_signature(model)
        meta = {
            "name": name,
            "version": version,
            "model_type": model_type,
            "model_kwargs": kwargs,
            "graph_fingerprint": (
                None if graph is None else graph_fingerprint(graph)
            ),
            "settings_hash": None if settings is None else stable_hash(settings),
            "metadata": dict(metadata or {}),
        }
        save_state_dict(model, os.path.join(directory, "params.npz"))
        meta_path = os.path.join(directory, "meta.json")
        tmp_path = meta_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
        # The metadata file is the commit marker: versions without one are
        # treated as absent, so a crashed save never yields a readable entry.
        os.replace(tmp_path, meta_path)
        return version

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load(
        self,
        name: str,
        version: Optional[int] = None,
        expect_graph=None,
    ) -> Tuple[GNNModel, Dict]:
        """Rebuild and return ``(model, meta)`` for ``name``/``version``.

        ``version=None`` resolves the latest.  When ``expect_graph`` is
        given, its fingerprint must match the recorded training structure —
        the guard against serving a model over a different graph than it was
        trained on (incremental mutations *intentionally* change the
        fingerprint; pass the pre-mutation structure or skip the check).
        """
        meta = self.read_meta(name, version)
        kwargs = dict(meta["model_kwargs"])
        model = build_model(
            meta["model_type"],
            in_features=kwargs.pop("in_features"),
            num_classes=kwargs.pop("num_classes"),
            hidden_features=kwargs.pop("hidden_features"),
            rng=0,
            **kwargs,
        )
        load_into(model, os.path.join(self._entry_dir(name, meta["version"]), "params.npz"))
        model.eval()
        if expect_graph is not None:
            expected = meta.get("graph_fingerprint")
            actual = graph_fingerprint(expect_graph)
            if expected is not None and expected != actual:
                raise ValueError(
                    f"registry entry {name!r} v{meta['version']} was trained on a "
                    f"different structure (fingerprint {expected} != {actual})"
                )
        return model, meta

    def read_meta(self, name: str, version: Optional[int] = None) -> Dict:
        """The metadata dictionary of one entry (latest version by default)."""
        self._check_name(name)
        if version is None:
            version = self.latest_version(name)
            if version == 0:
                raise KeyError(f"no registered model named {name!r} under {self.root}")
        path = os.path.join(self._entry_dir(name, version), "meta.json")
        if not os.path.isfile(path):
            raise KeyError(f"no registered model {name!r} version {version}")
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def versions(self, name: str) -> List[int]:
        """All committed versions of ``name``, ascending."""
        self._check_name(name)
        directory = os.path.join(self.root, name)
        if not os.path.isdir(directory):
            return []
        found = []
        for entry in os.listdir(directory):
            match = re.fullmatch(r"v(\d+)", entry)
            if match and os.path.isfile(os.path.join(directory, entry, "meta.json")):
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """Highest committed version of ``name`` (0 when absent)."""
        versions = self.versions(name)
        return versions[-1] if versions else 0

    def list_models(self) -> List[str]:
        """Names with at least one committed version."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if _NAME_PATTERN.fullmatch(entry) and self.versions(entry)
        )

    # ------------------------------------------------------------------ #
    # Retention
    # ------------------------------------------------------------------ #
    def pin(self, name: str, version: int) -> None:
        """Protect ``version`` from :meth:`prune` (idempotent)."""
        self.read_meta(name, version)  # raises for absent entries
        with open(self._pin_path(name, version), "w", encoding="utf-8"):
            pass

    def unpin(self, name: str, version: int) -> None:
        """Remove a pin (absent pins are a no-op)."""
        self._check_name(name)
        try:
            os.remove(self._pin_path(name, version))
        except FileNotFoundError:
            pass

    def pinned_versions(self, name: str) -> List[int]:
        """Committed versions of ``name`` currently pinned, ascending."""
        return [
            version
            for version in self.versions(name)
            if os.path.isfile(self._pin_path(name, version))
        ]

    def prune(self, name: str, keep_last: int = 3) -> List[int]:
        """Delete old versions of ``name``; returns the versions removed.

        Keeps the newest ``keep_last`` committed versions plus every pinned
        one.  The latest committed version is always retained — even at
        ``keep_last=0`` — so serving processes resolving "latest" are
        unaffected and version numbers are never reused (the next
        :meth:`save` still claims ``latest + 1``).
        """
        if keep_last < 0:
            raise ValueError("keep_last must be non-negative")
        versions = self.versions(name)
        keep = set(versions[max(0, len(versions) - keep_last) :] if keep_last else [])
        keep.update(versions[-1:])
        keep.update(self.pinned_versions(name))
        removed = [version for version in versions if version not in keep]
        for version in removed:
            shutil.rmtree(self._entry_dir(name, version))
        return removed

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _pin_path(self, name: str, version: int) -> str:
        return os.path.join(self._entry_dir(name, version), "PINNED")

    def _entry_dir(self, name: str, version: int) -> str:
        return os.path.join(self.root, name, f"v{version}")

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_PATTERN.fullmatch(name):
            raise ValueError(
                "model names must be alphanumeric with ._- separators, "
                f"got {name!r}"
            )
