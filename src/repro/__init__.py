"""repro — reproduction of "Unraveling Privacy Risks of Individual Fairness
in Graph Neural Networks" (Zhang, Yuan, Pan — IEEE ICDE 2024).

The package is organised as:

* :mod:`repro.nn`          — NumPy autodiff substrate (tensors, layers, optimisers),
* :mod:`repro.sparse`      — CSR matrices, sparse kernels and the compute backend,
* :mod:`repro.graphs`      — graph container, similarity, Laplacians, generators,
* :mod:`repro.datasets`    — calibrated surrogate datasets (Cora, Citeseer, ...),
* :mod:`repro.gnn`         — GCN / GAT / GraphSAGE victim models and trainer,
* :mod:`repro.fairness`    — InFoRM individual-fairness metric and regulariser,
* :mod:`repro.privacy`     — link-stealing attacks, risk metrics, edge DP,
* :mod:`repro.influence`   — influence functions on training nodes,
* :mod:`repro.optimization`— the QCLP solver used by fairness reweighting,
* :mod:`repro.core`        — the PPFR method, baselines and the Δ metric,
* :mod:`repro.experiments` — harness regenerating every table and figure,
* :mod:`repro.serve`       — online inference serving (registry, engine,
  mutable graph sessions, request batching),
* :mod:`repro.cluster`     — sharded multi-process serving (partitioner,
  shard workers, shard router).

Quickstart
----------
>>> from repro.datasets import load_dataset
>>> from repro.core import MethodSettings, run_all_methods
>>> from repro.gnn import TrainConfig
>>> graph = load_dataset("cora", seed=0, scale=0.5)
>>> settings = MethodSettings(train=TrainConfig(epochs=50, patience=None))
>>> outcome = run_all_methods(graph, "gcn", settings, methods=["reg", "ppfr"])
>>> sorted(outcome["deltas"])
['ppfr', 'reg']
"""

from repro import (
    core,
    datasets,
    experiments,
    fairness,
    gnn,
    graphs,
    influence,
    nn,
    optimization,
    privacy,
    serve,
    sparse,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "datasets",
    "experiments",
    "fairness",
    "gnn",
    "graphs",
    "influence",
    "nn",
    "optimization",
    "privacy",
    "serve",
    "sparse",
    "utils",
    "__version__",
]
