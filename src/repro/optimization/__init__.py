"""Constrained optimisation utilities (QCLP solver replacing Gurobi)."""

from repro.optimization.qclp import QCLPProblem, QCLPSolution, solve_qclp
from repro.optimization.projections import project_onto_box, project_onto_ball

__all__ = [
    "QCLPProblem",
    "QCLPSolution",
    "solve_qclp",
    "project_onto_box",
    "project_onto_ball",
]
