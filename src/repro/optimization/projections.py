"""Euclidean projections used by the projected-gradient QCLP solver."""

from __future__ import annotations

import numpy as np


def project_onto_box(x: np.ndarray, low: float, high: float) -> np.ndarray:
    """Project ``x`` onto the box ``[low, high]^n``."""
    if low > high:
        raise ValueError("low must not exceed high")
    return np.clip(x, low, high)


def project_onto_ball(x: np.ndarray, radius: float) -> np.ndarray:
    """Project ``x`` onto the Euclidean ball of the given ``radius``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    norm = float(np.linalg.norm(x))
    if norm <= radius or norm == 0.0:
        return x.copy()
    return x * (radius / norm)


def project_onto_halfspace(x: np.ndarray, normal: np.ndarray, offset: float) -> np.ndarray:
    """Project ``x`` onto ``{z : normal·z ≤ offset}``."""
    normal = np.asarray(normal, dtype=np.float64)
    norm_sq = float(normal @ normal)
    violation = float(normal @ x) - offset
    if violation <= 0 or norm_sq == 0:
        return x.copy()
    return x - (violation / norm_sq) * normal
