"""Quadratically Constrained Linear Programming (Eq. 13 of the paper).

The fairness-aware reweighting solves

    minimise    cᵀ w                      (total bias influence)
    subject to  ‖w‖² ≤ α·|V_l|            (re-weighting budget)
                uᵀ w ≤ β·Σ max(u, 0)      (limited utility cost)
                −1 ≤ w_v ≤ 1              (box)

where ``c = I_fbias`` and ``u = I_futil`` are the per-node influence vectors.
The paper uses Gurobi; this module provides two Gurobi-free backends that
agree within tolerance on this small convex problem:

* ``"slsqp"`` — SciPy's sequential least-squares programming,
* ``"projected"`` — projected gradient descent with alternating projections
  onto the box, ball and half-space constraints (dependency-free fallback and
  cross-check used by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from repro.optimization.projections import (
    project_onto_ball,
    project_onto_box,
    project_onto_halfspace,
)


@dataclass
class QCLPProblem:
    """Problem data for the fairness-aware reweighting QCLP."""

    bias_influence: np.ndarray
    utility_influence: np.ndarray
    alpha: float = 0.9
    beta: float = 0.1
    lower: float = -1.0
    upper: float = 1.0

    def __post_init__(self) -> None:
        self.bias_influence = np.asarray(self.bias_influence, dtype=np.float64)
        self.utility_influence = np.asarray(self.utility_influence, dtype=np.float64)
        if self.bias_influence.ndim != 1:
            raise ValueError("bias_influence must be a vector")
        if self.bias_influence.shape != self.utility_influence.shape:
            raise ValueError("bias and utility influence vectors must align")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.lower > self.upper:
            raise ValueError("lower bound exceeds upper bound")

    @property
    def size(self) -> int:
        return int(self.bias_influence.shape[0])

    @property
    def ball_radius_squared(self) -> float:
        """Right-hand side of the quadratic constraint, ``α·|V_l|``."""
        return float(self.alpha * self.size)

    @property
    def utility_budget(self) -> float:
        """Right-hand side of the utility constraint, ``β·Σ max(u, 0)``."""
        positive = np.maximum(self.utility_influence, 0.0)
        return float(self.beta * positive.sum())


@dataclass
class QCLPSolution:
    """Result of a QCLP solve."""

    weights: np.ndarray
    objective: float
    feasible: bool
    backend: str
    iterations: int = 0

    def summary(self) -> dict:
        return {
            "objective": self.objective,
            "feasible": self.feasible,
            "backend": self.backend,
            "weight_norm": float(np.linalg.norm(self.weights)),
            "min_weight": float(self.weights.min()) if self.weights.size else 0.0,
            "max_weight": float(self.weights.max()) if self.weights.size else 0.0,
        }


def _is_feasible(problem: QCLPProblem, weights: np.ndarray, tol: float = 1e-6) -> bool:
    ball_ok = float(weights @ weights) <= problem.ball_radius_squared * (1 + tol) + tol
    utility_ok = float(problem.utility_influence @ weights) <= problem.utility_budget + tol
    box_ok = bool(
        np.all(weights >= problem.lower - tol) and np.all(weights <= problem.upper + tol)
    )
    return ball_ok and utility_ok and box_ok


def _solve_slsqp(problem: QCLPProblem, max_iterations: int) -> QCLPSolution:
    c = problem.bias_influence
    u = problem.utility_influence

    constraints = [
        {
            "type": "ineq",
            "fun": lambda w: problem.ball_radius_squared - float(w @ w),
            "jac": lambda w: -2.0 * w,
        },
        {
            "type": "ineq",
            "fun": lambda w: problem.utility_budget - float(u @ w),
            "jac": lambda w: -u,
        },
    ]
    bounds = [(problem.lower, problem.upper)] * problem.size
    result = optimize.minimize(
        fun=lambda w: float(c @ w),
        x0=np.zeros(problem.size),
        jac=lambda w: c,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-9},
    )
    weights = np.asarray(result.x, dtype=np.float64)
    # Clean up tiny constraint violations left by SLSQP.
    weights = project_onto_box(weights, problem.lower, problem.upper)
    weights = project_onto_ball(weights, np.sqrt(problem.ball_radius_squared))
    return QCLPSolution(
        weights=weights,
        objective=float(c @ weights),
        feasible=_is_feasible(problem, weights),
        backend="slsqp",
        iterations=int(result.nit),
    )


def _solve_projected(
    problem: QCLPProblem, max_iterations: int, step_size: Optional[float]
) -> QCLPSolution:
    c = problem.bias_influence
    u = problem.utility_influence
    radius = np.sqrt(problem.ball_radius_squared)
    if step_size is None:
        scale = max(float(np.linalg.norm(c)), 1e-12)
        step_size = radius / scale / 10.0

    weights = np.zeros(problem.size)
    best = weights.copy()
    best_objective = 0.0
    for iteration in range(max_iterations):
        weights = weights - step_size * c
        # Alternating projections onto the three convex constraint sets.
        for _ in range(5):
            weights = project_onto_box(weights, problem.lower, problem.upper)
            weights = project_onto_ball(weights, radius)
            weights = project_onto_halfspace(weights, u, problem.utility_budget)
        objective = float(c @ weights)
        if objective < best_objective and _is_feasible(problem, weights, tol=1e-4):
            best_objective = objective
            best = weights.copy()
    return QCLPSolution(
        weights=best,
        objective=best_objective,
        feasible=_is_feasible(problem, best, tol=1e-4),
        backend="projected",
        iterations=max_iterations,
    )


def solve_qclp(
    problem: QCLPProblem,
    backend: str = "slsqp",
    max_iterations: int = 300,
    step_size: Optional[float] = None,
) -> QCLPSolution:
    """Solve the fairness-aware reweighting QCLP.

    Parameters
    ----------
    problem:
        Influence vectors and constraint levels.
    backend:
        ``"slsqp"`` (default) or ``"projected"``.
    max_iterations:
        Iteration budget of the chosen backend.
    step_size:
        Optional step size for the projected-gradient backend.
    """
    if problem.size == 0:
        return QCLPSolution(
            weights=np.zeros(0), objective=0.0, feasible=True, backend=backend
        )
    if backend == "slsqp":
        return _solve_slsqp(problem, max_iterations)
    if backend == "projected":
        return _solve_projected(problem, max_iterations, step_size)
    raise ValueError(f"unknown backend {backend!r}; use 'slsqp' or 'projected'")
