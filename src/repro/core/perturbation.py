"""Privacy-aware perturbation (PP) — the data-space half of PPFR.

Guided by the theoretical analysis of Sections V and VI-B2, PP injects
*heterophilic* noisy edges: for every node it connects a number of currently
unconnected nodes whose **predicted** label differs.  This (a) shrinks the
unconnected-pair prediction distance ``d0`` and (b) reduces the class
separation ``‖μ1 − μ0‖``, both of which lower the distinguishability that
link-stealing attacks exploit — while touching far fewer edges than
randomised DP noise of comparable effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gnn.models import GNNModel
from repro.graphs.graph import Graph
from repro.graphs.perturb import heterophilic_candidates
from repro.graphs.revision import tag_adjacency
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class PerturbationResult:
    """Outcome of the privacy-aware perturbation step."""

    perturbed_adjacency: np.ndarray
    delta_adjacency: np.ndarray
    num_added_edges: int
    gamma: float

    @property
    def added_pairs(self) -> np.ndarray:
        """The injected undirected edges as an ``(M, 2)`` index array."""
        rows, cols = np.nonzero(np.triu(self.delta_adjacency, k=1))
        return np.stack([rows, cols], axis=1)


def privacy_aware_perturbation(
    model: GNNModel,
    graph: Graph,
    gamma: float,
    rng: RandomState = 0,
    predicted_labels: Optional[np.ndarray] = None,
) -> PerturbationResult:
    """Generate the perturbed structure ``A' = A + ΔA`` of Section VI-B2.

    Parameters
    ----------
    model:
        The vanilla-trained victim model; its predictions decide which
        candidate neighbours count as heterophilic.  (Using predictions rather
        than ground-truth labels keeps the procedure label-free outside the
        training set, exactly as in the paper.)
    graph:
        The original training graph.
    gamma:
        Perturbation ratio: node ``i`` receives ``round(γ · |N(i)|)`` new
        heterophilic edges.
    rng:
        Seed / generator for the candidate sampling.
    predicted_labels:
        Pre-computed predictions (skips the model query when provided).

    Returns
    -------
    :class:`PerturbationResult` with the perturbed adjacency, the added-edge
    indicator matrix ΔA and bookkeeping counts.
    """
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    generator = ensure_rng(rng)
    adjacency = graph.adjacency
    n = graph.num_nodes

    if predicted_labels is None:
        predicted_labels = model.predict_labels(graph.features, adjacency)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    if predicted_labels.shape != (n,):
        raise ValueError("predicted_labels must have one entry per node")

    delta = np.zeros_like(adjacency)
    if gamma == 0:
        unchanged = adjacency.copy()
        tag_adjacency(unchanged, owned=True)
        return PerturbationResult(
            perturbed_adjacency=unchanged,
            delta_adjacency=delta,
            num_added_edges=0,
            gamma=gamma,
        )

    for node in range(n):
        degree = int(np.count_nonzero(adjacency[node]))
        budget = int(round(gamma * degree))
        if budget <= 0:
            continue
        candidates = heterophilic_candidates(adjacency, predicted_labels, node)
        # Do not re-add edges already injected for this node from the other side.
        already = np.nonzero(delta[node])[0]
        if already.size:
            candidates = np.setdiff1d(candidates, already, assume_unique=False)
        if candidates.size == 0:
            continue
        chosen = generator.choice(
            candidates, size=min(budget, candidates.size), replace=False
        )
        delta[node, chosen] = 1.0
        delta[chosen, node] = 1.0

    perturbed = np.clip(adjacency + delta, 0.0, 1.0)
    np.fill_diagonal(perturbed, 0.0)
    # The perturbed structure is owned by this result and never mutated, so
    # PPFR's repeated fine-tune forwards can reuse its cached normalisation.
    tag_adjacency(perturbed, owned=True)
    num_added = int(np.count_nonzero(np.triu(delta, k=1)))
    return PerturbationResult(
        perturbed_adjacency=perturbed,
        delta_adjacency=delta,
        num_added_edges=num_added,
        gamma=gamma,
    )
