"""PPFR — Privacy-aware Perturbations and Fairness-aware Reweighting.

This is the paper's primary contribution: a model-agnostic two-phase
training scheme.  Phase one is vanilla training for accuracy; phase two
fine-tunes the model with

* a **privacy-aware perturbed graph** (heterophilic noisy edges that shrink
  the unconnected-pair distance gap exploited by link-stealing attacks), and
* a **fairness-aware reweighted loss** (per-node weights from an
  influence-function-driven QCLP).

The subpackage also implements the paper's baselines (Vanilla, Reg, DPReg,
DPFR), the combined effectiveness metric Δ (Eq. 22) and the evaluation
harness shared by all experiments.
"""

from repro.core.config import ComputeConfig, PPFRConfig, MethodSettings
from repro.core.perturbation import privacy_aware_perturbation, PerturbationResult
from repro.core.results import MethodEvaluation, MethodRun, evaluate_method
from repro.core.delta import delta_report, DeltaReport
from repro.core.baselines import (
    run_vanilla,
    run_reg,
    run_dp_reg,
    run_dp_fr,
    run_fr_only,
    run_pp_only,
)
from repro.core.ppfr import run_ppfr
from repro.core.pipeline import METHOD_RUNNERS, run_method, run_all_methods

__all__ = [
    "ComputeConfig",
    "PPFRConfig",
    "MethodSettings",
    "privacy_aware_perturbation",
    "PerturbationResult",
    "MethodEvaluation",
    "MethodRun",
    "evaluate_method",
    "delta_report",
    "DeltaReport",
    "run_vanilla",
    "run_reg",
    "run_dp_reg",
    "run_dp_fr",
    "run_fr_only",
    "run_pp_only",
    "run_ppfr",
    "METHOD_RUNNERS",
    "run_method",
    "run_all_methods",
]
