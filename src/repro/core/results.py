"""Method evaluation: accuracy, individual-fairness bias and edge-leakage risk.

Every method (Vanilla, Reg, DPReg, DPFR, PPFR, ...) produces a trained model
plus the adjacency matrix it serves predictions with.  Evaluation is always
performed against the *original* graph's ground truth:

* accuracy — test-mask accuracy of the served predictions,
* bias — InFoRM bias w.r.t. the Jaccard similarity of the original structure,
* risk — link-stealing AUC against the original (confidential) edge set,
  averaged over the eight posterior distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.fairness.inform import bias_metric
from repro.gnn.models import GNNModel
from repro.gnn.trainer import TrainResult
from repro.graphs.graph import Graph
from repro.graphs.similarity import graph_similarity
from repro.nn.losses import accuracy as accuracy_score
from repro.privacy.attacks.link_stealing import AttackResult, LinkStealingAttack
from repro.privacy.risk import edge_privacy_risk


@dataclass
class MethodEvaluation:
    """Trustworthiness scorecard of one trained model."""

    method: str
    dataset: str
    model: str
    accuracy: float
    bias: float
    risk_auc: float
    risk_distance: float
    attack: Optional[AttackResult] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, float]:
        row = {
            "method": self.method,
            "dataset": self.dataset,
            "model": self.model,
            "accuracy": self.accuracy,
            "bias": self.bias,
            "risk_auc": self.risk_auc,
            "risk_distance": self.risk_distance,
        }
        row.update(self.extras)
        return row


@dataclass
class MethodRun:
    """A trained method: model, serving structure and training bookkeeping."""

    method: str
    model: GNNModel
    graph: Graph
    serving_adjacency: np.ndarray
    train_result: Optional[TrainResult] = None
    fine_tune_result: Optional[TrainResult] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def posteriors(self) -> np.ndarray:
        """Posteriors the deployed system would return to a querying client."""
        return self.model.predict_proba(self.graph.features, self.serving_adjacency)


def evaluate_method(
    run: MethodRun,
    model_name: str = "",
    similarity: Optional[object] = None,
    attack: Optional[LinkStealingAttack] = None,
    num_unconnected_risk_pairs: Optional[int] = 2000,
) -> MethodEvaluation:
    """Score a :class:`MethodRun` on accuracy, bias and edge-leakage risk.

    Parameters
    ----------
    run:
        The trained method.
    model_name:
        Architecture label for reporting (``"gcn"``, ``"gat"``, ...).
    similarity:
        Pre-computed Jaccard similarity of the original graph, dense or CSR
        (recomputed backend-aware when omitted; pass it when evaluating many
        methods on the same graph).
    attack:
        Configured link-stealing attack (defaults to the paper's eight
        distances with balanced negative sampling).
    num_unconnected_risk_pairs:
        Subsample size for the ``f_risk`` distance statistic.
    """
    graph = run.graph
    if graph.labels is None or graph.test_mask is None:
        raise ValueError("evaluation requires labels and a test mask")

    posteriors = run.posteriors()
    test_accuracy = accuracy_score(posteriors[graph.test_mask], graph.labels[graph.test_mask])

    sim = graph_similarity(graph) if similarity is None else similarity
    bias = bias_metric(posteriors, sim)

    attacker = attack or LinkStealingAttack()
    pairs, labels = _attack_pairs(graph, attacker)
    attack_result = attacker.evaluate_posteriors(posteriors, pairs, labels)

    risk_distance = edge_privacy_risk(
        posteriors, graph, metric="euclidean", num_unconnected=num_unconnected_risk_pairs
    )

    return MethodEvaluation(
        method=run.method,
        dataset=graph.name,
        model=model_name,
        accuracy=test_accuracy,
        bias=bias,
        risk_auc=attack_result.mean_auc,
        risk_distance=risk_distance,
        attack=attack_result,
    )


def _attack_pairs(graph: Graph, attacker: LinkStealingAttack):
    from repro.privacy.attacks.link_stealing import sample_attack_pairs
    from repro.utils.rng import ensure_rng

    return sample_attack_pairs(
        graph, num_negative=attacker.num_negative, rng=ensure_rng(attacker.seed)
    )
