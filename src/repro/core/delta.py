"""The combined fairness–privacy effectiveness metric Δ (Eq. 22).

``Δ = (Δbias · Δrisk) / |Δacc|`` where each ``Δ(·)`` is the relative change of
the metric w.r.t. the vanilla-trained model.  A *positive* Δ means the method
improves fairness and privacy simultaneously (both relative changes negative)
or degrades both; the paper therefore reads Δ together with the signs of its
factors and the magnitude of the accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.results import MethodEvaluation


def relative_change(treated: float, reference: float, eps: float = 1e-12) -> float:
    """``(treated − reference) / reference`` with a guard for tiny references."""
    denominator = reference if abs(reference) > eps else (eps if reference >= 0 else -eps)
    return (treated - reference) / denominator


@dataclass
class DeltaReport:
    """Relative changes of a method against the vanilla baseline."""

    method: str
    dataset: str
    model: str
    delta_accuracy: float
    delta_bias: float
    delta_risk: float
    delta_combined: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "model": self.model,
            "delta_accuracy_percent": 100.0 * self.delta_accuracy,
            "delta_bias_percent": 100.0 * self.delta_bias,
            "delta_risk_percent": 100.0 * self.delta_risk,
            "delta_combined": self.delta_combined,
        }

    @property
    def improves_both(self) -> bool:
        """True when the method reduces bias *and* risk simultaneously."""
        return self.delta_bias < 0 and self.delta_risk < 0


def delta_report(
    treated: MethodEvaluation,
    vanilla: MethodEvaluation,
    min_accuracy_change: float = 1e-3,
) -> DeltaReport:
    """Compute the Δ scorecard of ``treated`` relative to ``vanilla``.

    ``min_accuracy_change`` floors ``|Δacc|`` so that methods with essentially
    zero accuracy change do not blow up the combined metric (the paper's
    evaluation never encounters an exactly-zero accuracy change; the floor
    only protects degenerate small-scale runs).
    """
    delta_accuracy = relative_change(treated.accuracy, vanilla.accuracy)
    delta_bias = relative_change(treated.bias, vanilla.bias)
    delta_risk = relative_change(treated.risk_auc, vanilla.risk_auc)
    denominator = max(abs(delta_accuracy), min_accuracy_change)
    combined = (delta_bias * delta_risk) / denominator
    return DeltaReport(
        method=treated.method,
        dataset=treated.dataset,
        model=treated.model,
        delta_accuracy=delta_accuracy,
        delta_bias=delta_bias,
        delta_risk=delta_risk,
        delta_combined=combined,
    )
