"""Method registry and the per-cell experiment pipeline.

``run_all_methods`` trains every requested method on one (dataset, model)
cell, evaluates each on accuracy / bias / risk and reports the Δ scorecards
against the vanilla baseline — this is the building block every table and
figure of the paper is assembled from.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.baselines import (
    run_dp_fr,
    run_dp_reg,
    run_fr_only,
    run_pp_only,
    run_reg,
    run_vanilla,
)
from repro.core.config import MethodSettings
from repro.core.delta import DeltaReport, delta_report
from repro.core.ppfr import run_ppfr
from repro.core.results import MethodEvaluation, MethodRun, evaluate_method
from repro.gnn.models import build_model
from repro.graphs.graph import Graph
from repro.graphs.similarity import graph_similarity
from repro.privacy.attacks.link_stealing import LinkStealingAttack
from repro.utils.cache import ArtifactCache

MethodRunner = Callable[..., MethodRun]

METHOD_RUNNERS: Dict[str, MethodRunner] = {
    "vanilla": run_vanilla,
    "reg": run_reg,
    "dpreg": run_dp_reg,
    "dpfr": run_dp_fr,
    "ppfr": run_ppfr,
    "fr": run_fr_only,
    "pp": run_pp_only,
}
"""Name → runner for every training scheme evaluated in the paper."""


def run_method(
    method: str,
    model_name: str,
    graph: Graph,
    settings: MethodSettings,
    hidden_features: int = 16,
) -> MethodRun:
    """Construct a fresh model and train it with ``method`` on ``graph``."""
    key = method.lower()
    if key not in METHOD_RUNNERS:
        raise KeyError(
            f"unknown method {method!r}; available: {', '.join(sorted(METHOD_RUNNERS))}"
        )
    with settings.compute.activate():
        model = build_model(
            model_name,
            in_features=graph.num_features,
            num_classes=graph.num_classes,
            hidden_features=hidden_features,
            rng=settings.model_seed,
        )
        return METHOD_RUNNERS[key](model, graph, settings)


def run_all_methods(
    graph: Graph,
    model_name: str,
    settings: MethodSettings,
    methods: Sequence[str] = ("vanilla", "reg", "dpreg", "dpfr", "ppfr"),
    hidden_features: int = 16,
    artifact_cache: Optional[ArtifactCache] = None,
    cache_key: Optional[str] = None,
) -> Dict[str, object]:
    """Run the requested methods on one (dataset, model) cell.

    Returns a dictionary with

    * ``"runs"`` — method name → :class:`MethodRun`,
    * ``"evaluations"`` — method name → :class:`MethodEvaluation`,
    * ``"deltas"`` — method name → :class:`DeltaReport` (methods other than
      vanilla, relative to the vanilla run).

    When ``artifact_cache`` and ``cache_key`` are given, every trained
    ``MethodRun`` is memoised under ``"train:<cache_key>:<method>"`` and its
    evaluation under ``"eval:<cache_key>:<method>"``, so cells sharing work —
    Table III and Figure 4 train identical (gcn, vanilla/reg) cells, Table IV
    reuses both, and Table II's victim is the cached vanilla run — train and
    evaluate each method once per process.  Keeping the two keys separate
    lets training-only consumers (the influence/diagnostics cells) reuse a
    model without paying for an attack evaluation they discard.  Both stages
    are deterministic, so cached and recomputed results are identical.
    """
    methods = list(methods)
    if "vanilla" not in methods:
        methods = ["vanilla"] + methods

    attack = LinkStealingAttack(seed=settings.attack_seed)
    similarity_memo: List[object] = []

    def similarity():
        # Built lazily so fully-cached cells never pay for it.
        if not similarity_memo:
            similarity_memo.append(graph_similarity(graph))
        return similarity_memo[0]

    runs: Dict[str, MethodRun] = {}
    evaluations: Dict[str, MethodEvaluation] = {}
    with settings.compute.activate():
        for method in methods:

            def train(method: str = method) -> MethodRun:
                return run_method(method, model_name, graph, settings, hidden_features)

            if artifact_cache is not None and cache_key is not None:
                run = artifact_cache.get_or_create(f"train:{cache_key}:{method}", train)
                evaluation = artifact_cache.get_or_create(
                    f"eval:{cache_key}:{method}",
                    lambda run=run: evaluate_method(
                        run, model_name=model_name, similarity=similarity(), attack=attack
                    ),
                )
            else:
                run = train()
                evaluation = evaluate_method(
                    run, model_name=model_name, similarity=similarity(), attack=attack
                )
            runs[method] = run
            evaluations[method] = evaluation

    vanilla_eval = evaluations["vanilla"]
    deltas: Dict[str, DeltaReport] = {
        name: delta_report(evaluation, vanilla_eval)
        for name, evaluation in evaluations.items()
        if name != "vanilla"
    }
    return {"runs": runs, "evaluations": evaluations, "deltas": deltas}
