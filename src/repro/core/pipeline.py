"""Method registry and the per-cell experiment pipeline.

``run_all_methods`` trains every requested method on one (dataset, model)
cell, evaluates each on accuracy / bias / risk and reports the Δ scorecards
against the vanilla baseline — this is the building block every table and
figure of the paper is assembled from.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.baselines import (
    run_dp_fr,
    run_dp_reg,
    run_fr_only,
    run_pp_only,
    run_reg,
    run_vanilla,
)
from repro.core.config import MethodSettings
from repro.core.delta import DeltaReport, delta_report
from repro.core.ppfr import run_ppfr
from repro.core.results import MethodEvaluation, MethodRun, evaluate_method
from repro.gnn.models import build_model
from repro.graphs.graph import Graph
from repro.graphs.similarity import jaccard_similarity
from repro.privacy.attacks.link_stealing import LinkStealingAttack

MethodRunner = Callable[..., MethodRun]

METHOD_RUNNERS: Dict[str, MethodRunner] = {
    "vanilla": run_vanilla,
    "reg": run_reg,
    "dpreg": run_dp_reg,
    "dpfr": run_dp_fr,
    "ppfr": run_ppfr,
    "fr": run_fr_only,
    "pp": run_pp_only,
}
"""Name → runner for every training scheme evaluated in the paper."""


def run_method(
    method: str,
    model_name: str,
    graph: Graph,
    settings: MethodSettings,
    hidden_features: int = 16,
) -> MethodRun:
    """Construct a fresh model and train it with ``method`` on ``graph``."""
    key = method.lower()
    if key not in METHOD_RUNNERS:
        raise KeyError(
            f"unknown method {method!r}; available: {', '.join(sorted(METHOD_RUNNERS))}"
        )
    with settings.compute.activate():
        model = build_model(
            model_name,
            in_features=graph.num_features,
            num_classes=graph.num_classes,
            hidden_features=hidden_features,
            rng=settings.model_seed,
        )
        return METHOD_RUNNERS[key](model, graph, settings)


def run_all_methods(
    graph: Graph,
    model_name: str,
    settings: MethodSettings,
    methods: Sequence[str] = ("vanilla", "reg", "dpreg", "dpfr", "ppfr"),
    hidden_features: int = 16,
) -> Dict[str, object]:
    """Run the requested methods on one (dataset, model) cell.

    Returns a dictionary with

    * ``"runs"`` — method name → :class:`MethodRun`,
    * ``"evaluations"`` — method name → :class:`MethodEvaluation`,
    * ``"deltas"`` — method name → :class:`DeltaReport` (methods other than
      vanilla, relative to the vanilla run).
    """
    methods = list(methods)
    if "vanilla" not in methods:
        methods = ["vanilla"] + methods

    similarity = jaccard_similarity(graph.adjacency)
    attack = LinkStealingAttack(seed=settings.attack_seed)

    runs: Dict[str, MethodRun] = {}
    evaluations: Dict[str, MethodEvaluation] = {}
    with settings.compute.activate():
        for method in methods:
            run = run_method(method, model_name, graph, settings, hidden_features)
            runs[method] = run
            evaluations[method] = evaluate_method(
                run, model_name=model_name, similarity=similarity, attack=attack
            )

    vanilla_eval = evaluations["vanilla"]
    deltas: Dict[str, DeltaReport] = {
        name: delta_report(evaluation, vanilla_eval)
        for name, evaluation in evaluations.items()
        if name != "vanilla"
    }
    return {"runs": runs, "evaluations": evaluations, "deltas": deltas}
