"""Configuration objects shared by PPFR and the baseline methods."""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, replace
from typing import ContextManager, Optional, Tuple

from repro.fairness.reweighting import FairnessReweightingConfig
from repro.gnn.trainer import TrainConfig
from repro.sparse.backend import available_backends, use_backend


GRID_EXECUTORS = ("serial", "thread", "process")
"""Executor names accepted by :class:`ComputeConfig` (and the grid engine)."""


@dataclass
class ComputeConfig:
    """Compute selection: propagation backend and grid-cell execution.

    Attributes
    ----------
    backend:
        ``"dense"``, ``"sparse"``, ``"auto"`` (nnz-density heuristic, see
        :mod:`repro.sparse.backend`) or ``None`` to inherit whatever backend
        the surrounding context selected — e.g. the experiment CLI's
        ``--backend`` flag.  ``None`` is the default so per-method settings
        do not silently override a run-wide choice.
    executor:
        Grid-cell executor (``"serial"`` / ``"thread"`` / ``"process"``) used
        when a :class:`repro.experiments.grid.GridRunner` is built from this
        config; ``None`` infers ``"thread"`` when ``jobs > 1``.
    jobs:
        Worker count for parallel cell execution (the CLI's ``--jobs``).
    cache:
        Enables the artifact/operator caches of the grid engine; caching is
        deterministic and trades memory for wall-clock only.
    cache_dir:
        Optional directory (the CLI's ``--cache-dir``, conventionally
        ``results/cache``) enabling the persistent artifact tier: trained
        cells are spilled to disk and reused across CLI invocations and
        process-pool workers.
    shards:
        Serving-side shard count (the serve CLI's ``--shards``): ``None``
        serves from one in-process engine, ``N >= 1`` routes through a
        :class:`repro.cluster.router.ShardRouter` over ``N`` worker
        processes.
    """

    backend: Optional[str] = None
    executor: Optional[str] = None
    jobs: Optional[int] = None
    cache: bool = True
    cache_dir: Optional[str] = None
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.backend is not None:
            allowed = set(available_backends()) | {"auto"}
            if self.backend not in allowed:
                raise ValueError(
                    f"backend must be one of {sorted(allowed)} or None, "
                    f"got {self.backend!r}"
                )
        if self.executor is not None and self.executor not in GRID_EXECUTORS:
            raise ValueError(
                f"executor must be one of {GRID_EXECUTORS} or None, got {self.executor!r}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be at least 1")

    def activate(self) -> ContextManager[None]:
        """Context manager applying the backend selection (no-op when inheriting)."""
        if self.backend is None:
            return contextlib.nullcontext()
        return use_backend(self.backend)


@dataclass
class PPFRConfig:
    """Hyper-parameters of the PPFR fine-tuning scheme.

    Attributes
    ----------
    gamma:
        Ratio of injected heterophilic edges per node, ``|N(i)_Δ| = γ|N(i)|``.
    fine_tune_fraction:
        ``s`` in ``e_re = s · e_va`` — the fine-tuning epoch budget as a
        fraction of the vanilla-training epochs (paper: s ∈ [0.1, 0.25]).
    fine_tune_lr_scale:
        Learning-rate multiplier of the fine-tuning phase relative to vanilla
        training.  Fine-tuning starts at the vanilla optimum, so a reduced
        step size keeps the update within the region where the influence
        approximation holds (0.1 by default).
    reweighting:
        QCLP / influence settings (α = 0.9, β = 0.1 in the paper).
    seed:
        Seed for the perturbation sampling.
    """

    gamma: float = 0.2
    fine_tune_fraction: float = 0.15
    fine_tune_lr_scale: float = 0.1
    reweighting: FairnessReweightingConfig = field(
        default_factory=FairnessReweightingConfig
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if not 0 < self.fine_tune_fraction <= 1:
            raise ValueError("fine_tune_fraction must lie in (0, 1]")
        if self.fine_tune_lr_scale <= 0:
            raise ValueError("fine_tune_lr_scale must be positive")

    def fine_tune_epochs(self, vanilla_epochs: int) -> int:
        """Epoch budget of the fine-tuning phase, ``e_re = s · e_va`` (≥ 1)."""
        return max(1, int(round(self.fine_tune_fraction * vanilla_epochs)))


@dataclass
class MethodSettings:
    """Everything needed to run one method on one (dataset, model) cell.

    Attributes
    ----------
    train:
        Vanilla-training hyper-parameters shared by every method.  Its
        ``batch_size`` / ``fanouts`` fields switch the shared trainer to
        neighbour-sampled mini-batches (see :meth:`with_batching`); methods
        whose loss needs full-graph logits fall back transparently.
    fairness_weight:
        λ of the InFoRM regulariser used by the ``Reg`` / ``DPReg`` baselines.
    dp_epsilon:
        Privacy budget of the edge-DP baselines.
    dp_mechanism:
        ``"edge_rand"`` (Cora / Citeseer in the paper) or ``"lap_graph"``
        (Pubmed, more scalable).
    ppfr:
        PPFR-specific settings.
    attack_seed:
        Seed of the link-stealing evaluation (negative-pair sampling).
    compute:
        Compute-backend selection (dense / sparse / auto) applied around the
        method run by the pipeline.
    """

    train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=150, patience=None))
    fairness_weight: float = 100.0
    dp_epsilon: float = 4.0
    dp_mechanism: str = "edge_rand"
    ppfr: PPFRConfig = field(default_factory=PPFRConfig)
    attack_seed: int = 0
    model_seed: int = 0
    compute: ComputeConfig = field(default_factory=ComputeConfig)

    def __post_init__(self) -> None:
        if self.fairness_weight <= 0:
            raise ValueError("fairness_weight must be positive")
        if self.dp_epsilon <= 0:
            raise ValueError("dp_epsilon must be positive")
        if self.dp_mechanism not in ("edge_rand", "lap_graph"):
            raise ValueError("dp_mechanism must be 'edge_rand' or 'lap_graph'")

    def with_batching(
        self,
        batch_size: Optional[int],
        fanouts: Optional[Tuple[Optional[int], ...]] = None,
        batch_seed: int = 0,
        eval_interval: int = 1,
    ) -> "MethodSettings":
        """A copy of these settings with mini-batch training fields applied.

        ``batch_size=None`` returns to full-batch training.  The copy shares
        everything else, so a full-batch and a mini-batch run differ only in
        the training execution model.
        """
        train = replace(
            self.train,
            batch_size=batch_size,
            fanouts=fanouts,
            batch_seed=batch_seed,
            eval_interval=eval_interval,
        )
        return replace(self, train=train)
