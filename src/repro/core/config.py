"""Configuration objects shared by PPFR and the baseline methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fairness.reweighting import FairnessReweightingConfig
from repro.gnn.trainer import TrainConfig


@dataclass
class PPFRConfig:
    """Hyper-parameters of the PPFR fine-tuning scheme.

    Attributes
    ----------
    gamma:
        Ratio of injected heterophilic edges per node, ``|N(i)_Δ| = γ|N(i)|``.
    fine_tune_fraction:
        ``s`` in ``e_re = s · e_va`` — the fine-tuning epoch budget as a
        fraction of the vanilla-training epochs (paper: s ∈ [0.1, 0.25]).
    fine_tune_lr_scale:
        Learning-rate multiplier of the fine-tuning phase relative to vanilla
        training.  Fine-tuning starts at the vanilla optimum, so a reduced
        step size keeps the update within the region where the influence
        approximation holds (0.1 by default).
    reweighting:
        QCLP / influence settings (α = 0.9, β = 0.1 in the paper).
    seed:
        Seed for the perturbation sampling.
    """

    gamma: float = 0.2
    fine_tune_fraction: float = 0.15
    fine_tune_lr_scale: float = 0.1
    reweighting: FairnessReweightingConfig = field(
        default_factory=FairnessReweightingConfig
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if not 0 < self.fine_tune_fraction <= 1:
            raise ValueError("fine_tune_fraction must lie in (0, 1]")
        if self.fine_tune_lr_scale <= 0:
            raise ValueError("fine_tune_lr_scale must be positive")

    def fine_tune_epochs(self, vanilla_epochs: int) -> int:
        """Epoch budget of the fine-tuning phase, ``e_re = s · e_va`` (≥ 1)."""
        return max(1, int(round(self.fine_tune_fraction * vanilla_epochs)))


@dataclass
class MethodSettings:
    """Everything needed to run one method on one (dataset, model) cell.

    Attributes
    ----------
    train:
        Vanilla-training hyper-parameters shared by every method.
    fairness_weight:
        λ of the InFoRM regulariser used by the ``Reg`` / ``DPReg`` baselines.
    dp_epsilon:
        Privacy budget of the edge-DP baselines.
    dp_mechanism:
        ``"edge_rand"`` (Cora / Citeseer in the paper) or ``"lap_graph"``
        (Pubmed, more scalable).
    ppfr:
        PPFR-specific settings.
    attack_seed:
        Seed of the link-stealing evaluation (negative-pair sampling).
    """

    train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=150, patience=None))
    fairness_weight: float = 100.0
    dp_epsilon: float = 4.0
    dp_mechanism: str = "edge_rand"
    ppfr: PPFRConfig = field(default_factory=PPFRConfig)
    attack_seed: int = 0
    model_seed: int = 0

    def __post_init__(self) -> None:
        if self.fairness_weight <= 0:
            raise ValueError("fairness_weight must be positive")
        if self.dp_epsilon <= 0:
            raise ValueError("dp_epsilon must be positive")
        if self.dp_mechanism not in ("edge_rand", "lap_graph"):
            raise ValueError("dp_mechanism must be 'edge_rand' or 'lap_graph'")
