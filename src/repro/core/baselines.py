"""Baseline training schemes: Vanilla, Reg, DPReg, DPFR and single-module ablations.

Every runner shares the same signature: it takes a freshly constructed model,
the training graph and a :class:`MethodSettings`, trains according to the
method's recipe and returns a :class:`MethodRun` whose ``serving_adjacency``
is the structure the deployed GNN answers queries with (the original graph
for Vanilla / Reg / FR, the perturbed graph for the DP and PP methods).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import MethodSettings
from repro.core.perturbation import privacy_aware_perturbation
from repro.core.results import MethodRun
from repro.fairness.inform import inform_regularizer
from repro.fairness.reweighting import compute_fairness_weights
from repro.gnn.models import GNNModel
from repro.gnn.trainer import TrainConfig, Trainer
from repro.graphs.graph import Graph
from repro.privacy.dp import edge_rand, lap_graph
from repro.utils.rng import ensure_rng


def _dp_perturb(graph: Graph, settings: MethodSettings, seed: int) -> np.ndarray:
    """Apply the configured edge-DP mechanism to the training structure."""
    rng = ensure_rng(seed)
    if settings.dp_mechanism == "edge_rand":
        return edge_rand(graph.adjacency, settings.dp_epsilon, rng=rng)
    return lap_graph(graph.adjacency, settings.dp_epsilon, rng=rng)


def run_vanilla(model: GNNModel, graph: Graph, settings: MethodSettings) -> MethodRun:
    """Plain cross-entropy training (the reference point of every Δ metric)."""
    trainer = Trainer(model, settings.train)
    result = trainer.fit(graph)
    return MethodRun(
        method="vanilla",
        model=model,
        graph=graph,
        serving_adjacency=graph.adjacency.copy(),
        train_result=result,
    )


def run_reg(model: GNNModel, graph: Graph, settings: MethodSettings) -> MethodRun:
    """``Reg``: vanilla loss + InFoRM fairness regulariser from scratch."""
    regularizer = inform_regularizer(weight=settings.fairness_weight)
    trainer = Trainer(model, settings.train)
    result = trainer.fit(graph, regularizers=[regularizer])
    return MethodRun(
        method="reg",
        model=model,
        graph=graph,
        serving_adjacency=graph.adjacency.copy(),
        train_result=result,
    )


def run_dp_reg(model: GNNModel, graph: Graph, settings: MethodSettings) -> MethodRun:
    """``DPReg``: edge-DP perturbed graph + fairness regulariser, trained from scratch.

    This is the "directly combine existing methods" baseline the paper argues
    against: the DP noise participates in the whole training run and costs a
    large amount of accuracy.
    """
    perturbed = _dp_perturb(graph, settings, seed=settings.ppfr.seed)
    regularizer = inform_regularizer(weight=settings.fairness_weight)
    trainer = Trainer(model, settings.train)
    result = trainer.fit(graph, regularizers=[regularizer], adjacency_override=perturbed)
    return MethodRun(
        method="dpreg",
        model=model,
        graph=graph,
        serving_adjacency=perturbed,
        train_result=result,
        extras={"dp_epsilon": settings.dp_epsilon, "dp_mechanism": settings.dp_mechanism},
    )


def run_dp_fr(model: GNNModel, graph: Graph, settings: MethodSettings) -> MethodRun:
    """``DPFR``: vanilla training, then fine-tuning on a DP graph with FR weights.

    Identical to PPFR except that the fine-tuning structure comes from the
    edge-DP mechanism instead of the heterophilic perturbation — the ablation
    the paper uses to show PP beats DP noise at the same budget.
    """
    trainer = Trainer(model, settings.train)
    vanilla_result = trainer.fit(graph)

    perturbed = _dp_perturb(graph, settings, seed=settings.ppfr.seed)
    weights = compute_fairness_weights(
        model, graph, config=settings.ppfr.reweighting
    )
    epochs = settings.ppfr.fine_tune_epochs(settings.train.epochs)
    fine_tune_result = trainer.fine_tune(
        graph,
        epochs=epochs,
        sample_weights=weights.loss_multipliers,
        adjacency_override=perturbed,
        learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
    )
    return MethodRun(
        method="dpfr",
        model=model,
        graph=graph,
        serving_adjacency=perturbed,
        train_result=vanilla_result,
        fine_tune_result=fine_tune_result,
        extras={"fairness_weights": weights, "dp_epsilon": settings.dp_epsilon},
    )


def run_fr_only(model: GNNModel, graph: Graph, settings: MethodSettings) -> MethodRun:
    """Ablation: fairness-aware reweighting fine-tuning with *no* perturbation.

    Used by Figure 6 (left) to show that fairness alone increases privacy
    risk.
    """
    trainer = Trainer(model, settings.train)
    vanilla_result = trainer.fit(graph)
    weights = compute_fairness_weights(model, graph, config=settings.ppfr.reweighting)
    epochs = settings.ppfr.fine_tune_epochs(settings.train.epochs)
    fine_tune_result = trainer.fine_tune(
        graph,
        epochs=epochs,
        sample_weights=weights.loss_multipliers,
        learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
    )
    return MethodRun(
        method="fr",
        model=model,
        graph=graph,
        serving_adjacency=graph.adjacency.copy(),
        train_result=vanilla_result,
        fine_tune_result=fine_tune_result,
        extras={"fairness_weights": weights},
    )


def run_pp_only(model: GNNModel, graph: Graph, settings: MethodSettings) -> MethodRun:
    """Ablation: privacy-aware perturbation fine-tuning with uniform loss weights.

    Used by Figure 6 (middle) to sweep the perturbation ratio γ.
    """
    trainer = Trainer(model, settings.train)
    vanilla_result = trainer.fit(graph)
    perturbation = privacy_aware_perturbation(
        model, graph, gamma=settings.ppfr.gamma, rng=settings.ppfr.seed
    )
    epochs = settings.ppfr.fine_tune_epochs(settings.train.epochs)
    fine_tune_result = trainer.fine_tune(
        graph,
        epochs=epochs,
        adjacency_override=perturbation.perturbed_adjacency,
        learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
    )
    return MethodRun(
        method="pp",
        model=model,
        graph=graph,
        serving_adjacency=perturbation.perturbed_adjacency,
        train_result=vanilla_result,
        fine_tune_result=fine_tune_result,
        extras={"perturbation": perturbation},
    )
