"""The PPFR method (Privacy-aware Perturbations + Fairness-aware Reweighting).

Algorithm (Fig. 3 of the paper):

1. **Vanilla training** of the victim GNN for accuracy.
2. **Privacy-aware perturbation** — query the trained model for predicted
   labels and inject heterophilic noisy edges, ``A' = A + ΔA`` with per-node
   budget ``γ·|N(i)|``.
3. **Fairness-aware reweighting** — estimate per-node influences on bias and
   utility with influence functions and solve the QCLP of Eq. (13) for
   weights ``w ∈ [−1, 1]``.
4. **Fine-tuning** — continue training for ``e_re = s·e_va`` epochs on the
   perturbed structure with the weighted loss ``Σ (1 + w_v)·L_v``.

The procedure is model-agnostic: it only needs the trained model's prediction
interface and gradients, so it applies unchanged to GCN, GAT and GraphSAGE.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import MethodSettings
from repro.core.perturbation import privacy_aware_perturbation
from repro.core.results import MethodRun
from repro.fairness.reweighting import compute_fairness_weights
from repro.gnn.models import GNNModel
from repro.gnn.trainer import Trainer
from repro.graphs.graph import Graph


def run_ppfr(
    model: GNNModel,
    graph: Graph,
    settings: MethodSettings,
    skip_vanilla: bool = False,
) -> MethodRun:
    """Train ``model`` on ``graph`` with the full PPFR pipeline.

    Parameters
    ----------
    model:
        A freshly initialised (or, with ``skip_vanilla=True``, already
        vanilla-trained) victim model.
    graph:
        Training graph with labels and split masks.
    settings:
        Shared method settings; ``settings.ppfr`` carries γ, s, α and β.
    skip_vanilla:
        When True the vanilla-training phase is skipped and the model is
        assumed to be already trained — this is the "plug-and-play" usage on
        an existing production model highlighted by the paper.
    """
    trainer = Trainer(model, settings.train)
    vanilla_result = None
    if not skip_vanilla:
        vanilla_result = trainer.fit(graph)

    ppfr = settings.ppfr

    # Phase 2a: privacy-aware perturbation guided by the trained model.
    perturbation = privacy_aware_perturbation(
        model, graph, gamma=ppfr.gamma, rng=ppfr.seed
    )

    # Phase 2b: fairness-aware reweighting via influence functions + QCLP.
    weights = compute_fairness_weights(model, graph, config=ppfr.reweighting)

    # Phase 2c: fine-tune on the perturbed structure with the weighted loss.
    epochs = ppfr.fine_tune_epochs(settings.train.epochs)
    fine_tune_result = trainer.fine_tune(
        graph,
        epochs=epochs,
        sample_weights=weights.loss_multipliers,
        adjacency_override=perturbation.perturbed_adjacency,
        learning_rate_scale=ppfr.fine_tune_lr_scale,
    )

    return MethodRun(
        method="ppfr",
        model=model,
        graph=graph,
        serving_adjacency=perturbation.perturbed_adjacency,
        train_result=vanilla_result,
        fine_tune_result=fine_tune_result,
        extras={
            "perturbation": perturbation,
            "fairness_weights": weights,
            "fine_tune_epochs": epochs,
        },
    )
