"""Input validation helpers shared across subpackages.

The library favours raising clear errors at the public API boundary over
failing deep inside numerical code.  These helpers centralise the common
checks (adjacency shape/symmetry, feature matrix alignment, label ranges,
probabilities, positive scalars).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_adjacency(adjacency: np.ndarray, *, name: str = "adjacency") -> np.ndarray:
    """Validate an adjacency matrix and return it as ``float64``.

    The matrix must be square, two-dimensional, non-negative and finite.
    Symmetry is *not* enforced here because perturbed / directed variants are
    sometimes useful internally; use :func:`check_symmetric` for that.
    """
    arr = np.asarray(adjacency, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(arr < 0):
        raise ValueError(f"{name} contains negative entries")
    return arr


def check_symmetric(matrix: np.ndarray, *, name: str = "matrix", tol: float = 1e-8) -> np.ndarray:
    """Validate that ``matrix`` is symmetric within ``tol``."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    if not np.allclose(arr, arr.T, atol=tol):
        raise ValueError(f"{name} must be symmetric")
    return arr


def check_features(
    features: np.ndarray, *, num_nodes: Optional[int] = None, name: str = "features"
) -> np.ndarray:
    """Validate a node-feature matrix and return it as ``float64``."""
    arr = np.asarray(features, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if num_nodes is not None and arr.shape[0] != num_nodes:
        raise ValueError(
            f"{name} has {arr.shape[0]} rows but the graph has {num_nodes} nodes"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_labels(
    labels: np.ndarray,
    *,
    num_nodes: Optional[int] = None,
    num_classes: Optional[int] = None,
    name: str = "labels",
) -> np.ndarray:
    """Validate an integer label vector."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.all(arr == arr.astype(np.int64)):
            arr = arr.astype(np.int64)
        else:
            raise ValueError(f"{name} must contain integers")
    arr = arr.astype(np.int64)
    if num_nodes is not None and arr.shape[0] != num_nodes:
        raise ValueError(f"{name} has {arr.shape[0]} entries, expected {num_nodes}")
    if arr.size and arr.min() < 0:
        raise ValueError(f"{name} must be non-negative")
    if num_classes is not None and arr.size and arr.max() >= num_classes:
        raise ValueError(
            f"{name} contains class {arr.max()} but only {num_classes} classes exist"
        )
    return arr


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate a scalar probability in ``[0, 1]``."""
    prob = float(value)
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {prob}")
    return prob


def check_positive(value: float, *, name: str = "value", strict: bool = True) -> float:
    """Validate a (strictly) positive scalar."""
    val = float(value)
    if strict and val <= 0:
        raise ValueError(f"{name} must be > 0, got {val}")
    if not strict and val < 0:
        raise ValueError(f"{name} must be >= 0, got {val}")
    return val


def check_in_range(
    value: float, low: float, high: float, *, name: str = "value"
) -> float:
    """Validate a scalar in the closed interval ``[low, high]``."""
    val = float(value)
    if not low <= val <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {val}")
    return val


def check_mask(
    mask: np.ndarray, *, num_nodes: Optional[int] = None, name: str = "mask"
) -> np.ndarray:
    """Validate a boolean node mask."""
    arr = np.asarray(mask)
    if arr.dtype != np.bool_:
        raise ValueError(f"{name} must be boolean")
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional")
    if num_nodes is not None and arr.shape[0] != num_nodes:
        raise ValueError(f"{name} has {arr.shape[0]} entries, expected {num_nodes}")
    return arr
