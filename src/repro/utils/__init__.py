"""Shared utilities: random-number management, validation and timing."""

from repro.utils.rng import RandomState, ensure_rng, spawn_children
from repro.utils.validation import (
    check_adjacency,
    check_features,
    check_labels,
    check_probability,
    check_positive,
    check_in_range,
)
from repro.utils.cache import ArtifactCache, CacheStats, stable_hash
from repro.utils.timing import Timer

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_children",
    "ArtifactCache",
    "CacheStats",
    "stable_hash",
    "check_adjacency",
    "check_features",
    "check_labels",
    "check_probability",
    "check_positive",
    "check_in_range",
    "Timer",
]
