"""Random-number utilities.

Every stochastic component of the library takes either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
experiments reproducible: a single root seed deterministically derives the
seeds of every sub-component (dataset generation, weight initialisation,
perturbation sampling, attack sampling, ...).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RandomState = Union[int, np.random.Generator, None]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an already constructed
        generator (returned unchanged).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot build a random generator from {type(seed)!r}")


def spawn_children(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    The derivation is deterministic for integer seeds, which makes a whole
    experiment reproducible from one root seed while keeping the per-component
    streams statistically independent.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = ensure_rng(seed)
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=count)]


def derive_seed(seed: RandomState, *labels: Iterable) -> int:
    """Derive a deterministic integer seed from ``seed`` and string labels.

    Useful when a component wants stable sub-seeds keyed by name, e.g.
    ``derive_seed(0, "cora", "split")``.
    """
    rng = ensure_rng(seed)
    base = int(rng.integers(0, 2**31 - 1))
    mix = base
    for label in labels:
        for ch in str(label):
            mix = (mix * 1000003 + ord(ch)) % (2**31 - 1)
    return mix


def optional_seed(rng: Optional[np.random.Generator]) -> Optional[int]:
    """Draw an integer seed from ``rng`` or return ``None`` when absent."""
    if rng is None:
        return None
    return int(rng.integers(0, 2**31 - 1))
