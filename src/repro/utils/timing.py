"""Backward-compatible alias of the unified telemetry Timer.

The timing helper grew into :class:`repro.obs.timer.Timer` — re-entrant,
nestable, usable as a decorator, and optionally feeding registry histograms
and trace spans.  This module keeps the historical import path working.
"""

from __future__ import annotations

from repro.obs.timer import Timer

__all__ = ["Timer"]
