"""Minimal wall-clock timing helper used by the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context manager that records elapsed wall-clock time in seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f"{self.label}: " if self.label else ""
        return f"<Timer {label}{self.elapsed:.4f}s>"
