"""Content-keyed artifact cache shared by the experiment grid engine.

The experiment grid repeats work by construction: Table III and Figure 4
train the exact same (dataset, model, method, seed) cells, Figures 5/7 are
projections of Table IV, and a repeated CLI run re-trains everything.  The
:class:`ArtifactCache` deduplicates that work: artifacts (trained
``MethodRun``/evaluation pairs, finished cell payloads) are stored under
stable content-derived string keys, so identical specs resolve to the same
entry no matter which experiment — or which worker thread — asks first.

Every cached artifact is produced by a deterministic factory, so a cache hit
returns bitwise-identical results to a recomputation; the executor
determinism tests assert exactly this.

Thread safety: lookups take a single lock; misses build under a *per-key*
lock so that two workers racing on the same cell train it once, while
builders for different keys run fully in parallel.

Persistence: constructing the cache with a ``directory`` spills every entry
to a pickle file under it (atomic tmp-file + rename), and misses consult the
directory before building — so repeated CLI invocations, process-pool
workers sharing the directory, and CI reruns reuse trained cells across
process boundaries.  Keys are content hashes, so a disk hit is exactly as
deterministic as a memory hit.  Corrupt or unreadable entries (a torn write,
an incompatible refactor) are deleted and rebuilt transparently; artifacts
that cannot be pickled are simply kept memory-only.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from typing import Callable, Optional, TypeVar

__all__ = ["CacheStats", "ArtifactCache", "stable_hash"]

_KEY_SANITIZER = re.compile(r"[^A-Za-z0-9._-]")

_MISSING = object()

T = TypeVar("T")


def _canonical(value):
    """Reduce ``value`` to JSON-serialisable primitives, deterministically."""
    if is_dataclass(value) and not isinstance(value, type):
        payload = {f.name: _canonical(getattr(value, f.name)) for f in fields(value)}
        payload["__dataclass__"] = type(value).__name__
        return payload
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and callable(value.item):  # NumPy scalars
        return value.item()
    raise TypeError(f"cannot canonicalise {type(value).__name__} for hashing")


def stable_hash(value) -> str:
    """Deterministic hex digest of a nested primitive/dataclass structure.

    Used to derive artifact keys from cell specs: equal content gives equal
    keys across processes and sessions (unlike ``hash()``, which is salted).
    """
    canonical = json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of an :class:`ArtifactCache`.

    A thin frozen view over the cache's registry counters
    (:mod:`repro.obs.metrics`) — the attribute API predates the registry and
    is kept verbatim.
    """

    hits: int
    misses: int
    size: int
    disk_hits: int = 0
    disk_skipped: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:  # pragma: no cover - display helper
        base = f"{self.hits} hits / {self.misses} misses ({self.size} entries)"
        if self.disk_hits:
            base += f", {self.disk_hits} from disk"
        return base


class ArtifactCache:
    """Thread-safe content-keyed store with per-key build deduplication.

    ``directory`` enables the persistent tier: entries are additionally
    pickled to ``<directory>/<sanitised key>.pkl`` and read back on misses,
    extending deduplication across processes and sessions.
    """

    def __init__(
        self, maxsize: Optional[int] = None, directory: Optional[str] = None
    ) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive or None")
        self.maxsize = maxsize
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._key_locks: dict = {}
        self._lock = threading.Lock()
        # Counters live in the active metrics registry (one label set per
        # cache instance); CacheStats stays a thin view over them.
        from repro.obs.metrics import active_metrics, next_instance

        metrics = active_metrics()
        labels = {"component": "artifact_cache", "instance": next_instance()}
        self._hits = metrics.counter("cache.artifact.hits", **labels)
        self._misses = metrics.counter("cache.artifact.misses", **labels)
        self._disk_hits = metrics.counter("cache.artifact.disk_hits", **labels)
        self._disk_skipped = metrics.counter("cache.artifact.disk_skipped", **labels)

    # ------------------------------------------------------------------ #
    # Persistent tier
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: str) -> str:
        # Keys are short content hashes with structured prefixes; sanitising
        # keeps them filesystem-safe without meaningful collision risk.
        return os.path.join(self.directory, _KEY_SANITIZER.sub("_", key) + ".pkl")

    def _disk_load(self, key: str):
        """Read a spilled entry; corrupt files are deleted and treated as misses."""
        path = self._disk_path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            return _MISSING
        except Exception:
            # Torn write, incompatible refactor, truncated file: recover by
            # discarding the entry and rebuilding from scratch.
            try:
                os.remove(path)
            except OSError:
                pass
            return _MISSING
        self._disk_hits.inc()
        return value

    def _disk_store(self, key: str, value) -> None:
        path = self._disk_path(key)
        tmp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp_path, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except Exception:
            # Unpicklable artifact or unwritable disk: stay memory-only.
            self._disk_skipped.inc()
            try:
                os.remove(tmp_path)
            except OSError:
                pass

    def get(self, key: str, default=None):
        """Non-counting lookup (used for peeking; does not touch stats)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
        if self.directory is not None:
            value = self._disk_load(key)
            if value is not _MISSING:
                with self._lock:
                    self._entries[key] = value
                    self._entries.move_to_end(key)
                    self._evict_locked()
                return value
        return default

    def contains(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return self.directory is not None and os.path.isfile(self._disk_path(key))

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (counts as a miss being filled)."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict_locked()
        if self.directory is not None:
            self._disk_store(key, value)

    def get_or_create(self, key: str, factory: Callable[[], T]) -> T:
        """Return the artifact under ``key``, building it once on a miss.

        Concurrent requests for the same key block on a per-key lock so the
        factory runs exactly once; requests for different keys build in
        parallel.  With a persistent directory, the disk tier is consulted
        under the per-key lock before building (and filled after).
        """
        with self._lock:
            if key in self._entries:
                self._hits.inc()
                self._entries.move_to_end(key)
                return self._entries[key]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._entries:
                    self._hits.inc()
                    self._entries.move_to_end(key)
                    return self._entries[key]
            try:
                value = _MISSING
                if self.directory is not None:
                    value = self._disk_load(key)
                loaded_from_disk = value is not _MISSING
                if not loaded_from_disk:
                    value = factory()
                with self._lock:
                    if loaded_from_disk:
                        self._hits.inc()
                    else:
                        self._misses.inc()
                    self._entries[key] = value
                    self._entries.move_to_end(key)
                    self._evict_locked()
                if self.directory is not None and not loaded_from_disk:
                    self._disk_store(key, value)
            finally:
                # Always drop the per-key lock — a raising factory must not
                # leak lock entries for every distinct failing key.
                with self._lock:
                    self._key_locks.pop(key, None)
        return value

    def record_hit(self, count: int = 1) -> None:
        """Count hits observed by callers using :meth:`get`/:meth:`contains`."""
        with self._lock:
            self._hits.inc(count)

    def record_miss(self, count: int = 1) -> None:
        """Count misses filled by callers using :meth:`put`."""
        with self._lock:
            self._misses.inc(count)

    def _evict_locked(self) -> None:
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits.value,
                misses=self._misses.value,
                size=len(self._entries),
                disk_hits=self._disk_hits.value,
                disk_skipped=self._disk_skipped.value,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
