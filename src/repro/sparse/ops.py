"""Sparse graph kernels mirroring the dense reference implementations.

Every function here is the CSR counterpart of a dense kernel elsewhere in
the library (:mod:`repro.graphs.laplacian`, :mod:`repro.gnn.normalization`,
:mod:`repro.graphs.khop`).  The pair is kept numerically equivalent — the
property tests in ``tests/test_sparse_equivalence.py`` assert agreement on
random graphs including isolated-node and empty-graph edge cases — so the
backend registry can swap one for the other without changing any result
beyond floating-point round-off.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sparse.csr import CSRMatrix, gather_row_positions

__all__ = [
    "INF_HOPS",
    "block_diag_csr",
    "gcn_norm_csr",
    "left_norm_csr",
    "mean_aggregation_csr",
    "laplacian_csr",
    "normalized_laplacian_csr",
    "shortest_path_hops_csr",
    "binary_neighborhoods_csr",
    "jaccard_similarity_csr",
    "jaccard_pairs_csr",
    "gather_neighbor_positions",
    "gather_neighbors",
    "induced_subgraph_csr",
    "row_subset_csr",
    "splice_rows_csr",
    "apply_edge_updates_csr",
    "append_empty_node_csr",
]

INF_HOPS = -1
"""Marker for unreachable node pairs (re-exported by :mod:`repro.graphs.khop`)."""


def _require_square(matrix: CSRMatrix, name: str) -> None:
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")


def block_diag_csr(blocks: Sequence[CSRMatrix]) -> CSRMatrix:
    """Pack CSR blocks into one block-diagonal CSR matrix.

    The result has shape ``(Σ rows_i, Σ cols_i)``; block ``i`` occupies the
    row band ``[Σ_{j<i} rows_j, …)`` and the column band ``[Σ_{j<i} cols_j,
    …)``.  Entry values and within-row ordering are preserved exactly, so
    ``packed @ vstack(x_i)`` computes every per-block product ``block_i @
    x_i`` bit-for-bit (the row-segment sum kernel sees identical terms in
    identical order).  This is the megabatching kernel of the fused serving
    path: the many small ego-block propagation matrices of one coalesced
    request flush run as a single spmm per layer.  Zero-row and zero-entry
    blocks are allowed (their bands are simply empty).
    """
    if not blocks:
        raise ValueError("block_diag_csr needs at least one block")
    if len(blocks) == 1:
        block = blocks[0]
        return CSRMatrix._from_parts(
            block.indptr, block.indices, block.data, block.shape
        )
    rows = 0
    cols = 0
    nnz = 0
    indptr_parts = [np.zeros(1, dtype=np.int64)]
    indices_parts = []
    data_parts = []
    for block in blocks:
        indptr_parts.append(block.indptr[1:] + nnz)
        indices_parts.append(block.indices + cols if cols else block.indices)
        data_parts.append(block.data)
        rows += block.shape[0]
        cols += block.shape[1]
        nnz += block.nnz
    return CSRMatrix._from_parts(
        np.concatenate(indptr_parts),
        np.concatenate(indices_parts) if nnz else np.empty(0, dtype=np.int64),
        np.concatenate(data_parts) if nnz else np.empty(0, dtype=np.float64),
        (rows, cols),
    )


def gcn_norm_csr(adjacency: CSRMatrix) -> CSRMatrix:
    """Symmetric GCN propagation ``D̃^{-1/2}(A+I)D̃^{-1/2}`` in CSR form."""
    _require_square(adjacency, "adjacency")
    with_loops = adjacency.add_identity()
    degrees = with_loops.row_sums()
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return with_loops.scale_rows(inv_sqrt).scale_cols(inv_sqrt)


def left_norm_csr(adjacency: CSRMatrix) -> CSRMatrix:
    """Left-normalised propagation ``D̃^{-1}(A+I)`` in CSR form."""
    _require_square(adjacency, "adjacency")
    with_loops = adjacency.add_identity()
    degrees = with_loops.row_sums()
    return with_loops.scale_rows(1.0 / degrees)


def mean_aggregation_csr(adjacency: CSRMatrix, include_self: bool = True) -> CSRMatrix:
    """Row-stochastic neighbourhood-mean operator (GraphSAGE aggregation).

    Matches :func:`repro.gnn.normalization.mean_aggregation_matrix`: isolated
    nodes receive an all-zero row rather than NaNs.
    """
    _require_square(adjacency, "adjacency")
    base = adjacency.add_identity() if include_self else adjacency
    degrees = base.row_sums()
    inverse = np.zeros_like(degrees)
    populated = degrees > 0
    inverse[populated] = 1.0 / degrees[populated]
    return base.scale_rows(inverse)


def laplacian_csr(weights: CSRMatrix) -> CSRMatrix:
    """Combinatorial Laplacian ``L = D - W`` in CSR form."""
    _require_square(weights, "weights")
    n = weights.shape[0]
    rows, cols, data = weights.to_coo()
    diag = np.arange(n, dtype=np.int64)
    return CSRMatrix.from_coo(
        np.concatenate([rows, diag]),
        np.concatenate([cols, diag]),
        np.concatenate([-data, weights.row_sums()]),
        (n, n),
    )


def normalized_laplacian_csr(weights: CSRMatrix, eps: float = 1e-12) -> CSRMatrix:
    """Symmetric normalised Laplacian ``I - D^{-1/2} W D^{-1/2}`` in CSR form."""
    _require_square(weights, "weights")
    n = weights.shape[0]
    degrees = weights.row_sums()
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, eps))
    inv_sqrt[degrees <= 0] = 0.0
    normalized = weights.scale_rows(inv_sqrt).scale_cols(inv_sqrt)
    rows, cols, data = normalized.to_coo()
    diag = np.arange(n, dtype=np.int64)
    return CSRMatrix.from_coo(
        np.concatenate([rows, diag]),
        np.concatenate([cols, diag]),
        np.concatenate([-data, np.ones(n)]),
        (n, n),
    )


def binary_neighborhoods_csr(
    adjacency: CSRMatrix, include_self_loops: bool = True
) -> CSRMatrix:
    """0/1 neighbourhood-membership matrix ``B`` (optionally with self-loops).

    Mirrors the pre-processing of the dense Jaccard kernel: entries with a
    positive stored value become 1, everything else is dropped, and with
    ``include_self_loops`` every node joins its own neighbourhood.
    """
    _require_square(adjacency, "adjacency")
    n = adjacency.shape[0]
    rows, cols, data = adjacency.to_coo()
    positive = data > 0
    rows, cols = rows[positive], cols[positive]
    if include_self_loops:
        diag = np.arange(n, dtype=np.int64)
        rows = np.concatenate([rows, diag])
        cols = np.concatenate([cols, diag])
    binary = CSRMatrix.from_coo(rows, cols, np.ones(rows.size), (n, n))
    # from_coo sums duplicates (e.g. an existing self-loop plus the injected
    # one); clip back to membership indicators.
    return CSRMatrix(
        binary.indptr, binary.indices, np.minimum(binary.data, 1.0), binary.shape
    )


def jaccard_similarity_csr(
    adjacency: CSRMatrix, include_self_loops: bool = True
) -> CSRMatrix:
    """Jaccard similarity ``S_ij = |N(i)∩N(j)| / |N(i)∪N(j)|`` in CSR form.

    The CSR counterpart of :func:`repro.graphs.similarity.jaccard_similarity`:
    instead of the dense ``B Bᵀ`` product, intersection counts are accumulated
    from neighbour-list expansions — entry ``(i, k)`` of the membership matrix
    ``B`` contributes row ``k`` of ``B`` to row ``i`` — which touches
    ``Σ_k deg(k)²`` index pairs instead of N² cells.  Counts and union sizes
    are small exact integers, so the stored values are *bitwise* equal to the
    dense kernel's nonzero entries.

    Returns the ``(N, N)`` similarity with a zero (absent) diagonal; only
    pairs at most two hops apart are stored (Lemma V.1 support).
    """
    binary = binary_neighborhoods_csr(adjacency, include_self_loops)
    n = binary.shape[0]
    sizes = binary.row_sums()
    indptr, indices = binary.indptr, binary.indices

    # Expand: for every stored entry (i, k), emit (i, j) for j in N(k).
    entry_rows = binary.row_indices()
    entry_cols = indices
    counts = indptr[entry_cols + 1] - indptr[entry_cols]
    total = int(counts.sum())
    if total == 0:
        return CSRMatrix.from_coo(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            (n, n),
        )
    out_rows = np.repeat(entry_rows, counts)
    starts = indptr[entry_cols]
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
    out_cols = indices[flat]

    intersection = CSRMatrix.from_coo(
        out_rows, out_cols, np.ones(total), (n, n)
    )
    rows, cols, inter = intersection.to_coo()
    off_diagonal = rows != cols
    rows, cols, inter = rows[off_diagonal], cols[off_diagonal], inter[off_diagonal]
    union = sizes[rows] + sizes[cols] - inter
    return CSRMatrix.from_coo(rows, cols, inter / union, (n, n))


def jaccard_pairs_csr(
    adjacency: CSRMatrix,
    pairs: np.ndarray,
    include_self_loops: bool = True,
) -> np.ndarray:
    """Jaccard similarity of explicit candidate pairs via neighbour intersections.

    The pair-restricted counterpart of :func:`jaccard_similarity_csr` used by
    attack feature extraction: only the ``(M, 2)`` candidate pairs are scored,
    at O(deg) per pair, never materialising an ``(N, N)`` matrix.
    """
    binary = binary_neighborhoods_csr(adjacency, include_self_loops)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.zeros(0)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (M, 2)")
    if pairs.min() < 0 or pairs.max() >= binary.shape[0]:
        raise ValueError("pair indices out of range")
    indptr, indices = binary.indptr, binary.indices
    sizes = binary.row_sums()
    values = np.zeros(pairs.shape[0], dtype=np.float64)
    for position, (i, j) in enumerate(pairs):
        if i == j:  # the similarity matrix has a zero diagonal by convention
            continue
        left = indices[indptr[i] : indptr[i + 1]]
        right = indices[indptr[j] : indptr[j + 1]]
        inter = np.intersect1d(left, right, assume_unique=True).size
        union = sizes[i] + sizes[j] - inter
        if union > 0:
            values[position] = inter / union
    return values


def gather_neighbor_positions(indptr: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Flat positions (into ``indices``/``data``) of every frontier node's slice.

    The shared frontier-expansion kernel: BFS, k-hop neighbourhood queries,
    row slicing and the mini-batch neighbour sampler all expand a node
    frontier by gathering the concatenated CSR adjacency lists; the single
    implementation lives next to the container
    (:func:`repro.sparse.csr.gather_row_positions`).
    """
    return gather_row_positions(indptr, frontier)


def gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenate the adjacency lists of every frontier node (vectorised)."""
    return indices[gather_neighbor_positions(indptr, frontier)]


# Backwards-compatible private alias (pre-sampling callers).
_gather_neighbors = gather_neighbors


def induced_subgraph_csr(adjacency: CSRMatrix, nodes: np.ndarray) -> CSRMatrix:
    """The ``(K, K)`` subgraph induced by ``nodes``, relabelled to ``0..K-1``.

    Row ``i`` of the result is the adjacency list of ``nodes[i]`` restricted
    to columns inside ``nodes`` (in the order given).  ``nodes`` must not
    contain duplicates — relabelling would be ambiguous.  Cost is
    O(Σ deg(nodes)) plus an O(N) relabelling table.
    """
    _require_square(adjacency, "adjacency")
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.ndim != 1:
        raise ValueError("nodes must be a 1-D index array")
    if nodes.size and (nodes.min() < 0 or nodes.max() >= adjacency.shape[0]):
        raise ValueError("node index out of bounds")
    if np.unique(nodes).size != nodes.size:
        raise ValueError("nodes must not contain duplicates")
    lookup = np.full(adjacency.shape[0], -1, dtype=np.int64)
    lookup[nodes] = np.arange(nodes.size, dtype=np.int64)
    sliced = adjacency.slice_rows(nodes)
    local_cols = lookup[sliced.indices]
    keep = local_cols >= 0
    rows = np.repeat(
        np.arange(nodes.size, dtype=np.int64), np.diff(sliced.indptr)
    )[keep]
    return CSRMatrix.from_coo(
        rows, local_cols[keep], sliced.data[keep], (nodes.size, nodes.size)
    )


def _check_row_subset(shape_rows: int, rows: np.ndarray, name: str) -> np.ndarray:
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1:
        raise ValueError(f"{name} must be a 1-D index array")
    if rows.size and (rows.min() < 0 or rows.max() >= shape_rows):
        raise ValueError(f"{name} index out of bounds")
    if rows.size > 1 and np.any(np.diff(rows) <= 0):
        raise ValueError(f"{name} must be sorted and duplicate-free")
    return rows


def row_subset_csr(adjacency: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """Keep only ``rows``' segments of ``adjacency``; every other row empty.

    The halo-extraction kernel of the cluster partitioner: a shard's view of
    the graph is the *row subset* of the global structure over its owned and
    halo nodes — same shape, same global column ids, full adjacency lists for
    the kept rows — so ego-block extraction, keyed sampling and k-hop dirty
    sets over the shard view are byte-identical to the global ones wherever
    the shard has complete knowledge.  ``rows`` must be sorted and unique.
    Cost: O(Σ deg(rows)) array traffic plus the O(N) index column.
    """
    n = adjacency.shape[0]
    rows = _check_row_subset(n, rows, "rows")
    counts = np.zeros(n, dtype=np.int64)
    counts[rows] = np.diff(adjacency.indptr)[rows]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    src = gather_row_positions(adjacency.indptr, rows)
    return CSRMatrix(
        indptr, adjacency.indices[src], adjacency.data[src], adjacency.shape
    )


def splice_rows_csr(
    adjacency: CSRMatrix, rows: np.ndarray, rows_csr: CSRMatrix
) -> CSRMatrix:
    """Replace ``rows`` of ``adjacency`` with the rows of ``rows_csr``.

    ``rows_csr`` is a ``(len(rows), M)`` CSR holding the new content of each
    listed row (an empty row clears it); every unlisted row's segment is
    copied wholesale, exactly like the splice phase of
    :func:`apply_edge_updates_csr`.  ``rows`` must be sorted and unique.
    This is the shard-worker commit kernel: the router ships freshly
    assembled rows (changed endpoints, entering halo nodes, cleared leaving
    nodes) and the worker splices them in O(nnz + Σ deg(rows)).
    """
    n = adjacency.shape[0]
    rows = _check_row_subset(n, rows, "rows")
    if rows_csr.shape != (rows.size, adjacency.shape[1]):
        raise ValueError(
            f"rows_csr must have shape {(rows.size, adjacency.shape[1])}, "
            f"got {rows_csr.shape}"
        )
    if rows.size == 0:
        return adjacency
    counts = np.diff(adjacency.indptr)
    new_counts = counts.copy()
    new_counts[rows] = np.diff(rows_csr.indptr)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    data = np.empty(indptr[-1], dtype=np.float64)

    untouched_mask = np.ones(n, dtype=bool)
    untouched_mask[rows] = False
    untouched = np.flatnonzero(untouched_mask)
    src = gather_row_positions(adjacency.indptr, untouched)
    dst = gather_row_positions(indptr, untouched)
    indices[dst] = adjacency.indices[src]
    data[dst] = adjacency.data[src]
    # rows_csr is row-major in ascending ``rows`` order — the order the
    # destination gather visits the replaced rows' segments.
    dst_rows = gather_row_positions(indptr, rows)
    indices[dst_rows] = rows_csr.indices
    data[dst_rows] = rows_csr.data
    return CSRMatrix(indptr, indices, data, adjacency.shape)


def _directed_pairs(pairs: np.ndarray, num_nodes: int, name: str) -> np.ndarray:
    """Validate undirected ``(M, 2)`` pairs and expand to both directions."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return pairs.reshape(0, 2)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"{name} must have shape (M, 2)")
    if pairs.min() < 0 or pairs.max() >= num_nodes:
        raise ValueError(f"{name} indices out of range")
    if np.any(pairs[:, 0] == pairs[:, 1]):
        raise ValueError(f"{name} must not contain self-loops")
    return np.concatenate([pairs, pairs[:, ::-1]], axis=0)


def apply_edge_updates_csr(
    adjacency: CSRMatrix,
    add_pairs: Optional[np.ndarray] = None,
    remove_pairs: Optional[np.ndarray] = None,
    weight: float = 1.0,
) -> CSRMatrix:
    """Apply undirected edge additions/removals without a full rebuild.

    The incremental-update kernel behind the serving layer's mutable graph
    session: only the rows incident to a changed edge are re-assembled (via
    the shared row-slice/gather machinery); every untouched row's segment is
    copied wholesale into the spliced output arrays.  Cost is
    O(nnz + Σ deg(touched)) array traffic with no dense ``(N, N)``
    materialisation — the thing :meth:`CSRMatrix.from_dense` cannot avoid.

    Adding an edge that already exists keeps its stored weight; removing an
    absent edge is a no-op (matching :mod:`repro.graphs.perturb`).  Pairs are
    undirected: each ``(i, j)`` updates both ``(i, j)`` and ``(j, i)``.
    """
    _require_square(adjacency, "adjacency")
    n = adjacency.shape[0]
    add_dir = _directed_pairs(
        add_pairs if add_pairs is not None else np.empty((0, 2)), n, "add_pairs"
    )
    remove_dir = _directed_pairs(
        remove_pairs if remove_pairs is not None else np.empty((0, 2)), n, "remove_pairs"
    )
    if add_dir.size == 0 and remove_dir.size == 0:
        return adjacency

    touched = np.unique(np.concatenate([add_dir[:, 0], remove_dir[:, 0]]))
    sliced = adjacency.slice_rows(touched)  # local rows = position in touched

    # Flat (local_row, col) coordinate keys make membership tests vectorised.
    old_rows = sliced.row_indices()
    old_keys = old_rows * n + sliced.indices
    remove_keys = np.searchsorted(touched, remove_dir[:, 0]) * n + remove_dir[:, 1]
    keep = ~np.isin(old_keys, remove_keys)

    add_keys = np.unique(np.searchsorted(touched, add_dir[:, 0]) * n + add_dir[:, 1])
    add_keys = add_keys[~np.isin(add_keys, old_keys[keep])]
    new_rows = np.concatenate([old_rows[keep], add_keys // n])
    new_cols = np.concatenate([sliced.indices[keep], add_keys % n])
    new_data = np.concatenate(
        [sliced.data[keep], np.full(add_keys.size, float(weight))]
    )
    touched_csr = CSRMatrix.from_coo(
        new_rows, new_cols, new_data, (touched.size, n)
    )

    # Splice: untouched rows copy their old segments, touched rows take the
    # freshly assembled ones.  Both sides use the shared flat-gather kernel.
    counts = np.diff(adjacency.indptr)
    new_counts = counts.copy()
    new_counts[touched] = np.diff(touched_csr.indptr)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    data = np.empty(indptr[-1], dtype=np.float64)

    untouched_mask = np.ones(n, dtype=bool)
    untouched_mask[touched] = False
    untouched = np.flatnonzero(untouched_mask)
    src = gather_row_positions(adjacency.indptr, untouched)
    dst = gather_row_positions(indptr, untouched)
    indices[dst] = adjacency.indices[src]
    data[dst] = adjacency.data[src]
    # touched_csr is row-major in ascending ``touched`` order, exactly the
    # order the destination gather visits the touched rows' segments.
    dst_touched = gather_row_positions(indptr, touched)
    indices[dst_touched] = touched_csr.indices
    data[dst_touched] = touched_csr.data
    return CSRMatrix(indptr, indices, data, (n, n))


def append_empty_node_csr(adjacency: CSRMatrix) -> CSRMatrix:
    """Grow a square CSR adjacency by one isolated node (O(1) array work).

    The new node has index ``N`` and no incident edges; connect it with
    :func:`apply_edge_updates_csr`.
    """
    _require_square(adjacency, "adjacency")
    n = adjacency.shape[0]
    indptr = np.empty(n + 2, dtype=np.int64)
    indptr[:-1] = adjacency.indptr
    indptr[-1] = adjacency.indptr[-1]
    return CSRMatrix(indptr, adjacency.indices, adjacency.data, (n + 1, n + 1))


def shortest_path_hops_csr(adjacency: CSRMatrix) -> np.ndarray:
    """All-pairs shortest-path hop counts via frontier BFS on CSR structure.

    Returns the same ``(N, N)`` integer matrix as
    :func:`repro.graphs.khop.shortest_path_hops` — ``0`` on the diagonal and
    :data:`INF_HOPS` for unreachable pairs — but touches only the O(m)
    adjacency lists per BFS level instead of scanning dense rows.
    """
    _require_square(adjacency, "adjacency")
    n = adjacency.shape[0]
    indptr, indices = adjacency.indptr, adjacency.indices
    hops = np.full((n, n), INF_HOPS, dtype=np.int64)
    for source in range(n):
        dist = hops[source]
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            candidates = gather_neighbors(indptr, indices, frontier)
            candidates = candidates[dist[candidates] == INF_HOPS]
            if candidates.size == 0:
                break
            frontier = np.unique(candidates)
            dist[frontier] = level
    return hops
