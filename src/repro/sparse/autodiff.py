"""Sparse matrix products registered on the reverse-mode autodiff tape.

``spmm(P, X)`` computes ``P @ X`` for a constant CSR operator ``P`` and a
:class:`repro.nn.Tensor` ``X``.  The backward rule is ``∂L/∂X = Pᵀ @ g`` —
both passes stay sparse; the dense ``(N, N)`` operator is never
materialised.  Gradients never flow into the graph structure, matching the
dense pipelines where propagation matrices are plain constants.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn.tensor import Tensor
from repro.sparse.csr import CSRMatrix

__all__ = ["spmm", "spmv"]


def spmm(matrix: CSRMatrix, x: Union[Tensor, np.ndarray]) -> Tensor:
    """Sparse × dense product ``matrix @ x`` with autodiff support.

    Parameters
    ----------
    matrix:
        Constant ``(R, C)`` CSR operator (no gradient is computed for it).
    x:
        ``(C, F)`` tensor (or array, promoted to a constant tensor).

    Returns
    -------
    An ``(R, F)`` tensor on the tape; backward accumulates ``matrixᵀ @ grad``
    into ``x`` using the cached CSR transpose, so neither pass densifies.
    """
    if not isinstance(matrix, CSRMatrix):
        raise TypeError("spmm expects a CSRMatrix as the left operand")
    x = Tensor._promote(x)
    if x.data.ndim != 2:
        raise ValueError("spmm expects a 2-D right operand")
    data = matrix.matmul_dense(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(matrix.T.matmul_dense(grad))

    return x._make(data, (x,), backward)


def spmv(matrix: CSRMatrix, x: Union[Tensor, np.ndarray]) -> Tensor:
    """Sparse matrix–vector product ``matrix @ x`` with autodiff support."""
    if not isinstance(matrix, CSRMatrix):
        raise TypeError("spmv expects a CSRMatrix as the left operand")
    x = Tensor._promote(x)
    if x.data.ndim != 1:
        raise ValueError("spmv expects a 1-D right operand")
    data = matrix.matmul_dense(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(matrix.T.matmul_dense(grad))

    return x._make(data, (x,), backward)
