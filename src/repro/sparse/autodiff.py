"""Sparse matrix products registered as autodiff primitives.

``spmm(P, X)`` computes ``P @ X`` for a constant CSR operator ``P`` and a
:class:`repro.nn.Tensor` ``X``.  Both ops are registered in the VJP
primitive table of :mod:`repro.nn.autodiff` exactly like the dense ops: the
CSR operator is a non-differentiable argument (argnum 0, no VJP — gradients
never flow into the graph structure) and the backward rule for the dense
operand is ``∂L/∂X = Pᵀ @ g`` using the cached CSR transpose, so neither
pass densifies the ``(N, N)`` operator.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn.autodiff import defvjp, primitive
from repro.nn.tensor import Tensor, apply_primitive
from repro.sparse.csr import CSRMatrix

__all__ = ["spmm", "spmv"]

_spmm = primitive("spmm", lambda matrix, x: matrix.matmul_dense(x))
defvjp(_spmm, 1, lambda g, ans, matrix, x: matrix.T.matmul_dense(g))

_spmv = primitive("spmv", lambda matrix, x: matrix.matmul_dense(x))
defvjp(_spmv, 1, lambda g, ans, matrix, x: matrix.T.matmul_dense(g))


def spmm(matrix: CSRMatrix, x: Union[Tensor, np.ndarray]) -> Tensor:
    """Sparse × dense product ``matrix @ x`` with autodiff support.

    Parameters
    ----------
    matrix:
        Constant ``(R, C)`` CSR operator (no gradient is computed for it).
    x:
        ``(C, F)`` tensor (or array, promoted to a constant tensor).

    Returns
    -------
    An ``(R, F)`` tensor on the tape; backward accumulates ``matrixᵀ @ grad``
    into ``x`` using the cached CSR transpose, so neither pass densifies.
    """
    if not isinstance(matrix, CSRMatrix):
        raise TypeError("spmm expects a CSRMatrix as the left operand")
    x = Tensor._promote(x)
    if x.data.ndim != 2:
        raise ValueError("spmm expects a 2-D right operand")
    return apply_primitive(_spmm, matrix, x)


def spmv(matrix: CSRMatrix, x: Union[Tensor, np.ndarray]) -> Tensor:
    """Sparse matrix–vector product ``matrix @ x`` with autodiff support."""
    if not isinstance(matrix, CSRMatrix):
        raise TypeError("spmv expects a CSRMatrix as the left operand")
    x = Tensor._promote(x)
    if x.data.ndim != 1:
        raise ValueError("spmv expects a 1-D right operand")
    return apply_primitive(_spmv, matrix, x)
