"""A dependency-free CSR (compressed sparse row) matrix.

The reproduction environment provides NumPy but no SciPy, so the sparse
compute backend implements its own CSR container.  Only the operations the
graph pipelines need are provided — construction from edge lists / dense
arrays / COO triplets, transposition, row/column scaling, self-loop
insertion and CSR × dense products — but each is fully vectorised so the
container scales to millions of non-zeros on a single core.

Internally a matrix is the classic triplet of arrays:

* ``indptr``  — ``(rows + 1,)`` int64 row pointers,
* ``indices`` — ``(nnz,)`` int64 column indices, sorted within each row,
* ``data``    — ``(nnz,)`` float64 values.

Instances are immutable by convention: every operation returns a new
:class:`CSRMatrix` (or a fresh dense array) and never mutates its inputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.obs.profile import active_profiler

__all__ = ["CSRMatrix", "gather_row_positions"]


def gather_row_positions(indptr: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Flat positions (into ``indices``/``data``) of the given rows' slices.

    The single implementation of the starts/counts flat-gather arithmetic
    behind every frontier expansion: :meth:`CSRMatrix.slice_rows`, the BFS
    and the mini-batch sampler (re-exported as
    :func:`repro.sparse.ops.gather_neighbor_positions`).  Duplicate rows are
    allowed and repeat their slice.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)


def _coo_to_csr(
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
    shape: Tuple[int, int],
    sum_duplicates: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort COO triplets into CSR arrays, summing duplicate coordinates."""
    num_rows, num_cols = shape
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    if not (rows.shape == cols.shape == data.shape) or rows.ndim != 1:
        raise ValueError("rows, cols and data must be 1-D arrays of equal length")
    if rows.size:
        if rows.min() < 0 or rows.max() >= num_rows:
            raise ValueError("row index out of bounds")
        if cols.min() < 0 or cols.max() >= num_cols:
            raise ValueError("column index out of bounds")
    order = np.lexsort((cols, rows))
    rows, cols, data = rows[order], cols[order], data[order]
    if sum_duplicates and rows.size:
        first = np.concatenate(([True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])))
        segment = np.cumsum(first) - 1
        rows = rows[first]
        cols = cols[first]
        data = np.bincount(segment, weights=data)
    counts = np.bincount(rows, minlength=num_rows)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, cols.astype(np.int64, copy=False), data.astype(np.float64, copy=False)


class CSRMatrix:
    """An immutable CSR sparse matrix over ``float64`` values."""

    # __weakref__ keeps instances weak-referenceable (the graph revision
    # registry tracks tagged adjacencies without extending their lifetime).
    __slots__ = ("indptr", "indices", "data", "shape", "_transpose_cache", "__weakref__")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._transpose_cache: Optional["CSRMatrix"] = None
        if self.indptr.shape != (self.shape[0] + 1,):
            raise ValueError("indptr must have shape (rows + 1,)")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise ValueError("indices and data must be 1-D arrays of equal length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of bounds")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_parts(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        """Wrap already-valid CSR arrays without the O(n + nnz) checks.

        Internal fast path for kernels that construct the arrays themselves
        (block packing, plan replay): the caller guarantees the invariants the
        public constructor would re-verify.  The arrays are adopted as-is.
        """
        matrix = object.__new__(cls)
        matrix.indptr = indptr
        matrix.indices = indices
        matrix.data = data
        matrix.shape = (int(shape[0]), int(shape[1]))
        matrix._transpose_cache = None
        return matrix

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        """Build from COO triplets; duplicate coordinates are summed."""
        indptr, indices, values = _coo_to_csr(rows, cols, data, shape)
        return cls(indptr, indices, values, shape)

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CSRMatrix":
        """Build from a dense 2-D array, keeping only non-zero entries."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("array must be 2-dimensional")
        rows, cols = np.nonzero(array)
        return cls.from_coo(rows, cols, array[rows, cols], array.shape)

    @classmethod
    def from_edges(
        cls,
        edges: np.ndarray,
        num_nodes: int,
        weights: Optional[np.ndarray] = None,
        symmetric: bool = True,
    ) -> "CSRMatrix":
        """Build an adjacency matrix from an ``(E, 2)`` edge array.

        With ``symmetric=True`` (the default, matching the undirected graphs
        used throughout the library) each edge contributes both ``(i, j)``
        and ``(j, i)``.  Duplicate edges are summed; pass each undirected
        edge once.  Self-loops are rejected because :class:`repro.graphs.Graph`
        forbids them.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (E, 2)")
        if np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("edge list contains self-loops")
        if weights is None:
            values = np.ones(edges.shape[0], dtype=np.float64)
        else:
            values = np.asarray(weights, dtype=np.float64)
            if values.shape != (edges.shape[0],):
                raise ValueError("weights must have shape (E,)")
        rows, cols = edges[:, 0], edges[:, 1]
        if symmetric:
            rows = np.concatenate([rows, cols])
            cols = np.concatenate([cols, edges[:, 0]])
            values = np.concatenate([values, values])
        return cls.from_coo(rows, cols, values, (num_nodes, num_nodes))

    @classmethod
    def identity(cls, n: int, value: float = 1.0) -> "CSRMatrix":
        """The ``n × n`` identity scaled by ``value``."""
        idx = np.arange(n, dtype=np.int64)
        return cls(
            np.arange(n + 1, dtype=np.int64),
            idx,
            np.full(n, float(value)),
            (n, n),
        )

    # ------------------------------------------------------------------ #
    # Basic properties / conversions
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    def density(self) -> float:
        """Fraction of stored entries, ``nnz / (rows · cols)``."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def memory_bytes(self) -> int:
        """Bytes held by the three CSR arrays (for benchmark reporting)."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = self.row_indices()
        # duplicate coordinates cannot occur (construction sums them)
        out[rows, self.indices] = self.data
        return out

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, data)`` COO triplets in row-major order."""
        return self.row_indices(), self.indices.copy(), self.data.copy()

    def row_indices(self) -> np.ndarray:
        """The row index of every stored entry (the COO expansion of indptr)."""
        return np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )

    def row_sums(self) -> np.ndarray:
        """Per-row sum of stored values (node degrees for 0/1 adjacency)."""
        out = np.zeros(self.shape[0], dtype=np.float64)
        counts = np.diff(self.indptr)
        nonempty = np.flatnonzero(counts)
        if nonempty.size:
            out[nonempty] = np.add.reduceat(self.data, self.indptr[nonempty])
        return out

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector."""
        n = min(self.shape)
        out = np.zeros(n, dtype=np.float64)
        rows = self.row_indices()
        on_diag = (rows == self.indices) & (rows < n)
        out[rows[on_diag]] = self.data[on_diag]
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------ #
    # Structure transformations
    # ------------------------------------------------------------------ #
    def transpose(self) -> "CSRMatrix":
        """Return the transpose (cached — CSR graphs are reused across passes)."""
        if self._transpose_cache is None:
            rows, cols, data = self.to_coo()
            transposed = CSRMatrix.from_coo(
                cols, rows, data, (self.shape[1], self.shape[0])
            )
            self._transpose_cache = transposed
            if transposed.shape == self.shape:
                transposed._transpose_cache = self
        return self._transpose_cache

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def slice_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Gather ``rows`` (in the given order) into a ``(len(rows), C)`` matrix.

        The row-slice kernel behind mini-batch block extraction: each output
        row is the full adjacency list of the corresponding input row, with
        column indices unchanged (still global).  Duplicate row ids are
        allowed and simply repeat the row.  Cost is O(output nnz).
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ValueError("rows must be a 1-D index array")
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise ValueError("row index out of bounds")
        counts = self.indptr[rows + 1] - self.indptr[rows]
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = gather_row_positions(self.indptr, rows)
        return CSRMatrix(
            indptr, self.indices[flat], self.data[flat], (rows.size, self.shape[1])
        )

    def scale_rows(self, factors: np.ndarray) -> "CSRMatrix":
        """Return ``diag(factors) @ self``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[0],):
            raise ValueError("factors must have one entry per row")
        data = self.data * np.repeat(factors, np.diff(self.indptr))
        return CSRMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    def scale_cols(self, factors: np.ndarray) -> "CSRMatrix":
        """Return ``self @ diag(factors)``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[1],):
            raise ValueError("factors must have one entry per column")
        data = self.data * factors[self.indices]
        return CSRMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    def scale(self, factor: float) -> "CSRMatrix":
        """Return ``factor * self``."""
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * float(factor), self.shape
        )

    def add_identity(self, value: float = 1.0) -> "CSRMatrix":
        """Return ``self + value · I`` (used for GCN self-loops)."""
        if self.shape[0] != self.shape[1]:
            raise ValueError("add_identity requires a square matrix")
        n = self.shape[0]
        rows, cols, data = self.to_coo()
        diag = np.arange(n, dtype=np.int64)
        return CSRMatrix.from_coo(
            np.concatenate([rows, diag]),
            np.concatenate([cols, diag]),
            np.concatenate([data, np.full(n, float(value))]),
            self.shape,
        )

    def __add__(self, other: "CSRMatrix") -> "CSRMatrix":
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        if other.shape != self.shape:
            raise ValueError("shape mismatch in CSR addition")
        rows_a, cols_a, data_a = self.to_coo()
        rows_b, cols_b, data_b = other.to_coo()
        return CSRMatrix.from_coo(
            np.concatenate([rows_a, rows_b]),
            np.concatenate([cols_a, cols_b]),
            np.concatenate([data_a, data_b]),
            self.shape,
        )

    # ------------------------------------------------------------------ #
    # Products
    # ------------------------------------------------------------------ #
    def _segment_rowsum(self, contributions: np.ndarray) -> np.ndarray:
        """Sum per-entry contributions into their rows.

        ``contributions`` has one leading entry per stored non-zero, in
        row-major CSR order; empty rows receive zeros.  ``np.add.reduceat``
        over the non-empty row pointers is correct because empty rows occupy
        no space in ``data`` — consecutive non-empty segments tile the whole
        contribution array.
        """
        out_shape = (self.shape[0],) + contributions.shape[1:]
        out = np.zeros(out_shape, dtype=np.float64)
        counts = np.diff(self.indptr)
        nonempty = np.flatnonzero(counts)
        if nonempty.size:
            out[nonempty] = np.add.reduceat(
                contributions, self.indptr[nonempty], axis=0
            )
        return out

    def matmul_dense(self, other: np.ndarray) -> np.ndarray:
        """CSR × dense product, ``(R, C) @ (C, F) -> (R, F)`` or matvec."""
        other = np.asarray(other, dtype=np.float64)
        if other.ndim not in (1, 2):
            raise ValueError("operand must be 1- or 2-dimensional")
        if other.shape[0] != self.shape[1]:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        profiler = active_profiler()
        if profiler is None:
            if other.ndim == 1:
                return self._segment_rowsum(self.data * other[self.indices])
            return self._segment_rowsum(self.data[:, None] * other[self.indices])
        frame = profiler.begin()
        out = None
        try:
            if other.ndim == 1:
                out = self._segment_rowsum(self.data * other[self.indices])
            else:
                out = self._segment_rowsum(self.data[:, None] * other[self.indices])
            return out
        finally:
            profiler.end(
                frame, "spmv" if other.ndim == 1 else "spmm", (self, other), out
            )

    def __matmul__(self, other) -> np.ndarray:
        if isinstance(other, CSRMatrix):
            raise TypeError(
                "CSR × CSR products are not supported; densify one operand "
                "or compose the operators"
            )
        return self.matmul_dense(other)

    def allclose(self, array: np.ndarray, atol: float = 1e-12) -> bool:
        """Convenience: compare against a dense reference."""
        return bool(np.allclose(self.to_dense(), array, atol=atol))
