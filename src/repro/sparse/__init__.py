"""Sparse graph compute backend.

A dependency-free CSR matrix type, sparse counterparts of the library's
dense graph kernels (propagation normalisations, Laplacians, k-hop BFS), an
autodiff-integrated ``spmm`` and a pluggable dense/sparse backend registry.
The registry defaults to ``"auto"``, which keeps small graphs on the exact
dense reference path and switches large low-density graphs to CSR — every
table/figure pipeline runs unmodified on either backend.
"""

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    append_empty_node_csr,
    apply_edge_updates_csr,
    binary_neighborhoods_csr,
    block_diag_csr,
    gather_neighbor_positions,
    gather_neighbors,
    gcn_norm_csr,
    induced_subgraph_csr,
    jaccard_pairs_csr,
    jaccard_similarity_csr,
    left_norm_csr,
    mean_aggregation_csr,
    laplacian_csr,
    normalized_laplacian_csr,
    row_subset_csr,
    shortest_path_hops_csr,
    splice_rows_csr,
)
from repro.sparse.autodiff import spmm, spmv
from repro.sparse.opcache import (
    OperatorCache,
    OperatorCacheStats,
    active_operator_cache,
    use_operator_cache,
)
from repro.sparse.backend import (
    AUTO_MAX_DENSITY,
    AUTO_MIN_NODES,
    ComputeBackend,
    DenseBackend,
    DenseOperator,
    SparseBackend,
    SparseOperator,
    available_backends,
    build_propagation,
    get_backend,
    get_backend_name,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "CSRMatrix",
    "gcn_norm_csr",
    "left_norm_csr",
    "mean_aggregation_csr",
    "laplacian_csr",
    "normalized_laplacian_csr",
    "shortest_path_hops_csr",
    "binary_neighborhoods_csr",
    "jaccard_similarity_csr",
    "jaccard_pairs_csr",
    "gather_neighbor_positions",
    "gather_neighbors",
    "induced_subgraph_csr",
    "row_subset_csr",
    "splice_rows_csr",
    "apply_edge_updates_csr",
    "append_empty_node_csr",
    "block_diag_csr",
    "spmm",
    "spmv",
    "OperatorCache",
    "OperatorCacheStats",
    "active_operator_cache",
    "use_operator_cache",
    "AUTO_MAX_DENSITY",
    "AUTO_MIN_NODES",
    "ComputeBackend",
    "DenseBackend",
    "DenseOperator",
    "SparseBackend",
    "SparseOperator",
    "available_backends",
    "build_propagation",
    "get_backend",
    "get_backend_name",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
