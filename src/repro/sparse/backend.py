"""Pluggable dense/sparse compute backends for graph propagation.

The GNN layers consume *propagation operators* — objects exposing
``matmul(tensor) -> Tensor`` for a fixed graph operator (GCN symmetric
normalisation, left normalisation, neighbourhood mean).  This module defines
the two built-in backends that produce them:

* ``dense``  — the original behaviour: a dense ``(N, N)`` NumPy operator
  applied with the tape's dense ``matmul``;
* ``sparse`` — a :class:`~repro.sparse.csr.CSRMatrix` operator applied with
  the tape-integrated :func:`~repro.sparse.autodiff.spmm`.

Backend selection is dynamically scoped through a :class:`contextvars.ContextVar`
(safe under future parallel runners, mirroring the autodiff mode flag) and
defaults to ``"auto"``: an nnz-density heuristic that keeps small or dense
graphs on the exact dense path and switches large sparse graphs to CSR.
New backends (e.g. a future GPU or blocked backend) register through
:func:`register_backend` — the dispatch idiom follows drjit-style backend
registries.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.nn.tensor import Tensor
from repro.sparse import ops
from repro.sparse.autodiff import spmm
from repro.sparse.csr import CSRMatrix

__all__ = [
    "AUTO_MIN_NODES",
    "AUTO_MAX_DENSITY",
    "DenseOperator",
    "SparseOperator",
    "ComputeBackend",
    "DenseBackend",
    "SparseBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "get_backend_name",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "build_propagation",
]

AdjacencyLike = Union[np.ndarray, CSRMatrix]

AUTO_MIN_NODES = 1024
"""``auto`` keeps graphs smaller than this on the (exact) dense path."""

AUTO_MAX_DENSITY = 0.05
"""``auto`` keeps graphs denser than this on the dense path."""

PROPAGATION_KINDS = ("gcn", "left", "mean", "mean_noself")
"""Operator kinds a backend must support (GCN / left norm / SAGE means)."""


# ---------------------------------------------------------------------- #
# Propagation operators
# ---------------------------------------------------------------------- #
class DenseOperator:
    """A dense propagation matrix applied with the tape's dense matmul."""

    __slots__ = ("matrix",)
    backend = "dense"

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = np.asarray(matrix, dtype=np.float64)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape

    def matmul(self, x: Union[Tensor, np.ndarray]) -> Tensor:
        return Tensor(self.matrix).matmul(x)

    def to_array(self) -> np.ndarray:
        """Dense view of the operator (reference / debugging)."""
        return self.matrix

    def memory_bytes(self) -> int:
        return self.matrix.nbytes


class SparseOperator:
    """A CSR propagation matrix applied with the sparse-aware ``spmm``."""

    __slots__ = ("matrix",)
    backend = "sparse"

    def __init__(self, matrix: CSRMatrix) -> None:
        if not isinstance(matrix, CSRMatrix):
            raise TypeError("SparseOperator wraps a CSRMatrix")
        self.matrix = matrix

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape

    def matmul(self, x: Union[Tensor, np.ndarray]) -> Tensor:
        return spmm(self.matrix, x)

    def to_array(self) -> np.ndarray:
        """Dense view of the operator (reference / debugging)."""
        return self.matrix.to_dense()

    def memory_bytes(self) -> int:
        return self.matrix.memory_bytes()


PropagationOperator = Union[DenseOperator, SparseOperator]


# ---------------------------------------------------------------------- #
# Backends
# ---------------------------------------------------------------------- #
class ComputeBackend:
    """Interface of a compute backend: build propagation operators."""

    name: str = "abstract"

    def build_operator(self, adjacency: AdjacencyLike, kind: str):
        raise NotImplementedError  # pragma: no cover - abstract


def _as_dense(adjacency: AdjacencyLike) -> np.ndarray:
    if isinstance(adjacency, CSRMatrix):
        return adjacency.to_dense()
    return np.asarray(adjacency, dtype=np.float64)


def _as_csr(adjacency: AdjacencyLike) -> CSRMatrix:
    if isinstance(adjacency, CSRMatrix):
        return adjacency
    return CSRMatrix.from_dense(adjacency)


class DenseBackend(ComputeBackend):
    """The original dense compute path (exact reference)."""

    name = "dense"

    def build_operator(self, adjacency: AdjacencyLike, kind: str) -> DenseOperator:
        # Imported lazily: the dense kernels live next to their consumers and
        # themselves import repro.sparse for type dispatch.
        from repro.graphs.laplacian import gcn_normalization
        from repro.gnn.normalization import mean_aggregation_matrix

        dense = _as_dense(adjacency)
        if kind == "gcn":
            return DenseOperator(gcn_normalization(dense, mode="symmetric"))
        if kind == "left":
            return DenseOperator(gcn_normalization(dense, mode="left"))
        if kind == "mean":
            return DenseOperator(mean_aggregation_matrix(dense, include_self=True))
        if kind == "mean_noself":
            return DenseOperator(mean_aggregation_matrix(dense, include_self=False))
        raise ValueError(
            f"unknown propagation kind {kind!r}; expected one of {PROPAGATION_KINDS}"
        )


class SparseBackend(ComputeBackend):
    """CSR compute path — O(m) storage, spmm forward/backward."""

    name = "sparse"

    def build_operator(self, adjacency: AdjacencyLike, kind: str) -> SparseOperator:
        csr = _as_csr(adjacency)
        if kind == "gcn":
            return SparseOperator(ops.gcn_norm_csr(csr))
        if kind == "left":
            return SparseOperator(ops.left_norm_csr(csr))
        if kind == "mean":
            return SparseOperator(ops.mean_aggregation_csr(csr, include_self=True))
        if kind == "mean_noself":
            return SparseOperator(ops.mean_aggregation_csr(csr, include_self=False))
        raise ValueError(
            f"unknown propagation kind {kind!r}; expected one of {PROPAGATION_KINDS}"
        )


# ---------------------------------------------------------------------- #
# Registry and dynamic selection
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, ComputeBackend] = {}

_ACTIVE_BACKEND: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_compute_backend", default="auto"
)


def register_backend(name: str, backend: ComputeBackend, overwrite: bool = False) -> None:
    """Register a compute backend under ``name``."""
    key = name.lower()
    if key == "auto":
        raise ValueError("'auto' is reserved for the selection heuristic")
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[key] = backend


def get_backend(name: str) -> ComputeBackend:
    """Look up a registered backend by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends (excluding the ``auto`` selector)."""
    return tuple(sorted(_REGISTRY))


def get_backend_name() -> str:
    """The currently selected backend name (``"auto"`` by default)."""
    return _ACTIVE_BACKEND.get()


def _check_selectable(name: str) -> str:
    key = name.lower()
    if key != "auto" and key not in _REGISTRY:
        raise KeyError(
            f"unknown backend {name!r}; available: auto, {', '.join(sorted(_REGISTRY))}"
        )
    return key


def set_backend(name: str) -> None:
    """Select the compute backend for the current context (``"auto"`` allowed)."""
    _ACTIVE_BACKEND.set(_check_selectable(name))


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Context manager scoping a backend selection; ``None`` is a no-op."""
    if name is None:
        yield
        return
    token = _ACTIVE_BACKEND.set(_check_selectable(name))
    try:
        yield
    finally:
        _ACTIVE_BACKEND.reset(token)


def _auto_choice(adjacency: AdjacencyLike) -> str:
    if isinstance(adjacency, CSRMatrix):
        # Already sparse: densifying would defeat the caller's intent.
        return "sparse"
    adjacency = np.asarray(adjacency)
    n = adjacency.shape[0]
    if n < AUTO_MIN_NODES:
        return "dense"
    cells = adjacency.size
    density = np.count_nonzero(adjacency) / cells if cells else 0.0
    return "sparse" if density <= AUTO_MAX_DENSITY else "dense"


def resolve_backend(
    adjacency: AdjacencyLike, name: Optional[str] = None
) -> ComputeBackend:
    """Resolve the backend for ``adjacency``.

    ``name`` overrides the context selection; ``"auto"`` (the default
    selection) applies the nnz-density heuristic: CSR inputs and large
    low-density graphs go sparse, everything else stays on the exact dense
    path.
    """
    key = _check_selectable(name) if name is not None else _ACTIVE_BACKEND.get()
    if key == "auto":
        key = _auto_choice(adjacency)
    return _REGISTRY[key]


def build_propagation(
    adjacency: AdjacencyLike, kind: str = "gcn", backend: Optional[str] = None
) -> PropagationOperator:
    """Build a propagation operator for ``adjacency`` via backend dispatch.

    This is the single entry point the GNN models use; ``kind`` is one of
    :data:`PROPAGATION_KINDS`.  When an operator cache is active
    (:mod:`repro.sparse.opcache`) and ``adjacency`` carries a revision tag,
    the operator is memoised under ``(revision, kind, backend)`` — repeated
    forwards over an unchanged structure (every training epoch, every PPFR
    fine-tune step) reuse it instead of renormalising.  Untagged arrays are
    built fresh every time, so e.g. GraphSAGE's per-epoch sampled
    neighbourhoods are never cached.
    """
    from repro.graphs.revision import adjacency_revision
    from repro.sparse.opcache import active_operator_cache

    resolved = resolve_backend(adjacency, backend)
    cache = active_operator_cache()
    if cache is not None:
        revision = adjacency_revision(adjacency)
        if revision is not None:
            return cache.get_or_build(
                (revision, kind, resolved.name),
                lambda: resolved.build_operator(adjacency, kind),
            )
    return resolved.build_operator(adjacency, kind)


register_backend("dense", DenseBackend())
register_backend("sparse", SparseBackend())
