"""Memoisation of propagation operators keyed by graph revision.

Building a propagation operator — GCN symmetric normalisation, left
normalisation, GraphSAGE neighbourhood means — costs O(N²) on the dense path
and O(m) on CSR, and the training loop rebuilds it on *every* forward pass:
each vanilla epoch, each PPFR fine-tune step, each per-epoch evaluation.
This module adds a dynamically-scoped cache in front of
:func:`repro.sparse.backend.build_propagation`:

* entries are keyed by ``(revision, kind, backend_name)`` where ``revision``
  comes from the graph revision registry (:mod:`repro.graphs.revision`) — an
  adjacency without a revision tag is *never* cached, and any mutation bumps
  the revision, so a stale normalisation cannot be served;
* the active cache is a :class:`contextvars.ContextVar`, mirroring the
  backend selection and autodiff mode flags, so parallel grid executors can
  scope caches per cell without interference;
* storage is a small thread-safe LRU — dense operators are O(N²) arrays, so
  the cache bounds its footprint instead of growing with the experiment grid.

Operators are built deterministically from the adjacency, so enabling the
cache changes wall-clock only, never results (the equivalence is asserted by
the executor-determinism tests).
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

__all__ = [
    "OperatorCacheStats",
    "OperatorCache",
    "active_operator_cache",
    "use_operator_cache",
]

DEFAULT_MAXSIZE = 32
"""Default LRU capacity (operators, not bytes)."""

CacheKey = Tuple[int, str, str]


@dataclass(frozen=True)
class OperatorCacheStats:
    """Hit/miss counters of an :class:`OperatorCache` — a thin frozen view
    over the cache's registry counters (:mod:`repro.obs.metrics`)."""

    hits: int
    misses: int
    size: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class OperatorCache:
    """Thread-safe LRU of propagation operators keyed by graph revision."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._lock = threading.Lock()
        from repro.obs.metrics import active_metrics, next_instance

        metrics = active_metrics()
        labels = {"component": "operator_cache", "instance": next_instance()}
        self._hits = metrics.counter("cache.operator.hits", **labels)
        self._misses = metrics.counter("cache.operator.misses", **labels)
        self._evictions = metrics.counter("cache.operator.evictions", **labels)

    def get_or_build(self, key: CacheKey, builder: Callable[[], object]) -> object:
        """Return the cached operator for ``key``, building it on a miss.

        A concurrent miss on the same key may build twice; both builds are
        deterministic and identical, and the last one wins — cheaper than a
        per-key lock for operators that take milliseconds to build.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits.inc()
                return self._entries[key]
        value = builder()
        with self._lock:
            self._misses.inc()
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions.inc()
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> OperatorCacheStats:
        with self._lock:
            return OperatorCacheStats(
                hits=self._hits.value,
                misses=self._misses.value,
                size=len(self._entries),
                evictions=self._evictions.value,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_ACTIVE_CACHE: contextvars.ContextVar[Optional[OperatorCache]] = contextvars.ContextVar(
    "repro_operator_cache", default=None
)


def active_operator_cache() -> Optional[OperatorCache]:
    """The operator cache of the current context (``None`` = caching off)."""
    return _ACTIVE_CACHE.get()


@contextlib.contextmanager
def use_operator_cache(cache: Optional[OperatorCache]) -> Iterator[Optional[OperatorCache]]:
    """Scope ``cache`` as the active operator cache (``None`` disables).

    Passing an existing cache shares it; revision keys are process-unique so
    cells running in parallel threads can share one cache safely.
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)
