"""Reproduce the fairness–privacy trade-off (RQ1, Section VII-A) on one graph.

Trains a GCN with increasing fairness-regularisation strength and shows that
as the individual-fairness bias falls, the link-stealing attack AUC rises —
the central empirical observation that motivates PPFR.

Run with::

    python examples/fairness_privacy_tradeoff.py [dataset]
"""

import sys

from repro.datasets import load_dataset
from repro.fairness import bias_from_graph, inform_regularizer
from repro.gnn import TrainConfig, Trainer, build_model, evaluate_accuracy
from repro.privacy import LinkStealingAttack


def train_with_fairness_weight(graph, weight, seed=0, epochs=60):
    """Train a GCN with the InFoRM regulariser at strength ``weight`` (0 = vanilla)."""
    model = build_model("gcn", graph.num_features, graph.num_classes, rng=seed)
    regularizers = [] if weight == 0 else [inform_regularizer(weight=weight)]
    Trainer(model, TrainConfig(epochs=epochs, patience=None)).fit(graph, regularizers=regularizers)
    return model


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cora"
    graph = load_dataset(dataset, seed=0, scale=0.6)
    attack = LinkStealingAttack(seed=0)

    print(f"dataset: {dataset} ({graph.num_nodes} nodes, homophily target "
          f"{graph.metadata['spec'].homophily})\n")
    print("fairness λ   accuracy   bias       attack AUC (mean over 8 distances)")
    for weight in (0, 20, 100, 500):
        model = train_with_fairness_weight(graph, weight)
        posteriors = model.predict_proba(graph.features, graph.adjacency)
        accuracy = evaluate_accuracy(model, graph)
        bias = bias_from_graph(posteriors, graph)
        auc = attack.evaluate(model, graph).mean_auc
        print(f"{weight:10d}   {accuracy:8.3f}   {bias:8.5f}   {auc:8.3f}")

    print(
        "\nExpected shape: bias falls monotonically with λ while the attack AUC "
        "does not fall (and typically rises) — fairness is paid for with edge privacy."
    )


if __name__ == "__main__":
    main()
