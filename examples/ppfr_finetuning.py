"""Apply PPFR as a plug-and-play fine-tuning step on an existing trained model.

This mirrors the deployment story of the paper: a developer already has a
vanilla-trained production GNN; PPFR fine-tunes it in place (perturbed graph +
reweighted loss) to improve individual fairness while keeping edge-leakage
risk in check.

Run with::

    python examples/ppfr_finetuning.py
"""

from repro.core import MethodSettings, PPFRConfig, evaluate_method, run_ppfr
from repro.core.results import MethodRun
from repro.datasets import load_dataset
from repro.gnn import TrainConfig, Trainer, build_model
from repro.graphs.similarity import jaccard_similarity
from repro.privacy import LinkStealingAttack


def main() -> None:
    graph = load_dataset("citeseer", seed=1, scale=0.6)
    similarity = jaccard_similarity(graph.adjacency)
    attack = LinkStealingAttack(seed=0)

    # An existing production model: plain GCN trained for accuracy only.
    model = build_model("gcn", graph.num_features, graph.num_classes, rng=1)
    settings = MethodSettings(
        train=TrainConfig(epochs=80, patience=None),
        ppfr=PPFRConfig(gamma=0.2, fine_tune_fraction=0.15),
    )
    Trainer(model, settings.train).fit(graph)

    before = evaluate_method(
        MethodRun(method="vanilla", model=model, graph=graph, serving_adjacency=graph.adjacency),
        model_name="gcn", similarity=similarity, attack=attack,
    )
    print("before PPFR:", f"acc={before.accuracy:.3f}", f"bias={before.bias:.4f}",
          f"attack AUC={before.risk_auc:.3f}")

    # PPFR fine-tuning on the already-trained model (skip_vanilla=True).
    run = run_ppfr(model, graph, settings, skip_vanilla=True)
    after = evaluate_method(run, model_name="gcn", similarity=similarity, attack=attack)
    print("after  PPFR:", f"acc={after.accuracy:.3f}", f"bias={after.bias:.4f}",
          f"attack AUC={after.risk_auc:.3f}")

    perturbation = run.extras["perturbation"]
    weights = run.extras["fairness_weights"]
    print(f"\ninjected heterophilic edges: {perturbation.num_added_edges} "
          f"(γ={perturbation.gamma})")
    print(f"fine-tuning epochs: {run.extras['fine_tune_epochs']}")
    print(f"QCLP weights: min={weights.raw_weights.min():+.2f}, "
          f"max={weights.raw_weights.max():+.2f}, "
          f"predicted Δbias={weights.qclp.objective:+.4f}")
    print(
        "\nExpected shape: bias drops noticeably, the attack AUC does not increase, "
        "and accuracy stays within a few points of the original model."
    )


if __name__ == "__main__":
    main()
