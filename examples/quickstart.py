"""Quickstart: train a GCN, measure fairness and edge-privacy risk, run PPFR.

Run with::

    python examples/quickstart.py
"""

from repro.core import MethodSettings, PPFRConfig, run_all_methods
from repro.datasets import load_dataset
from repro.gnn import TrainConfig


def main() -> None:
    # 1. Load a Cora surrogate (a calibrated SBM stand-in for the real graph).
    graph = load_dataset("cora", seed=0, scale=0.5)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.num_classes} classes, {graph.num_features} features")

    # 2. Configure the shared training settings and the PPFR hyper-parameters.
    settings = MethodSettings(
        train=TrainConfig(epochs=60, patience=None),
        fairness_weight=100.0,          # λ of the InFoRM regulariser (Reg baseline)
        dp_epsilon=4.0,                 # ε of the edge-DP baselines
        ppfr=PPFRConfig(gamma=0.2, fine_tune_fraction=0.2),
    )

    # 3. Train vanilla, Reg and PPFR on a GCN and evaluate all three.
    outcome = run_all_methods(graph, "gcn", settings, methods=["reg", "ppfr"])

    print("\nmethod     accuracy   bias     attack-AUC")
    for name, evaluation in outcome["evaluations"].items():
        print(f"{name:9s}  {evaluation.accuracy:8.3f}  {evaluation.bias:7.4f}  {evaluation.risk_auc:7.3f}")

    print("\nrelative changes against vanilla training:")
    for name, delta in outcome["deltas"].items():
        row = delta.to_dict()
        print(
            f"{name:9s}  ΔAcc {row['delta_accuracy_percent']:+6.1f}%  "
            f"ΔBias {row['delta_bias_percent']:+7.1f}%  "
            f"ΔRisk {row['delta_risk_percent']:+6.2f}%  "
            f"Δ {row['delta_combined']:+.3f}"
        )
    print(
        "\nExpected shape: Reg lowers bias but not risk (Δ ≤ 0); "
        "PPFR lowers bias with restricted risk (Δ > 0) at a small accuracy cost."
    )


if __name__ == "__main__":
    main()
