"""Audit a trained GNN for edge leakage and compare defences.

Demonstrates the attacker side of the paper: the link-stealing Attack-0 and
the LinkTeller influence attack against a trained GCN, and how edge-DP
(EdgeRand / LapGraph) and PPFR's heterophilic perturbation affect the attack.

Run with::

    python examples/link_stealing_audit.py
"""

import numpy as np

from repro.core.perturbation import privacy_aware_perturbation
from repro.datasets import load_dataset
from repro.gnn import TrainConfig, Trainer, build_model, evaluate_accuracy
from repro.privacy import LinkStealingAttack, LinkTellerAttack, edge_rand, lap_graph
from repro.privacy.attacks.link_stealing import sample_attack_pairs


def main() -> None:
    graph = load_dataset("pubmed", seed=0, scale=0.6)
    model = build_model("gcn", graph.num_features, graph.num_classes, rng=0)
    Trainer(model, TrainConfig(epochs=80, patience=None)).fit(graph)
    print(f"victim GCN accuracy: {evaluate_accuracy(model, graph):.3f}\n")

    attack = LinkStealingAttack(seed=0)
    pairs, labels = sample_attack_pairs(graph, rng=np.random.default_rng(0))

    # 1. Attack-0 against the undefended model, per distance metric.
    baseline = attack.evaluate(model, graph)
    print("Attack-0 AUC per distance (undefended):")
    for metric, auc in sorted(baseline.auc_per_metric.items()):
        print(f"  {metric:12s} {auc:.3f}")
    print(f"  {'mean':12s} {baseline.mean_auc:.3f}\n")

    # 2. Structural Jaccard baseline (no model queries at all): the reference
    # point showing how much of Attack-0's success is graph structure alone.
    structural_auc = attack.evaluate_structural_baseline(graph, pairs, labels)
    print(f"structural Jaccard baseline AUC: {structural_auc:.3f}\n")

    # 3. LinkTeller on a subsample of candidate pairs (two queries per probe).
    linkteller_auc = LinkTellerAttack(perturbation=1e-2).evaluate(model, graph, num_pairs=60, rng=0)
    print(f"LinkTeller AUC (60 probed pairs): {linkteller_auc:.3f}\n")

    # 4. Defences: serve posteriors computed on a protected graph structure.
    defences = {
        "EdgeRand eps=4": edge_rand(graph.adjacency, epsilon=4.0, rng=0),
        "LapGraph eps=4": lap_graph(graph.adjacency, epsilon=4.0, rng=0),
        "PPFR perturbation (gamma=0.2)": privacy_aware_perturbation(
            model, graph, gamma=0.2, rng=0
        ).perturbed_adjacency,
    }
    print("defence                          attack AUC   accuracy of served predictions")
    for name, adjacency in defences.items():
        posteriors = model.predict_proba(graph.features, adjacency)
        result = attack.evaluate_posteriors(posteriors, pairs, labels)
        accuracy = (
            posteriors[graph.test_mask].argmax(axis=1) == graph.labels[graph.test_mask]
        ).mean()
        print(f"{name:32s} {result.mean_auc:9.3f}   {accuracy:8.3f}")

    print(
        "\nExpected shape: every defence lowers the attack AUC relative to the "
        "undefended model; the heterophilic PPFR perturbation costs less accuracy "
        "than DP noise with a comparable AUC reduction."
    )


if __name__ == "__main__":
    main()
